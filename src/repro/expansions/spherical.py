"""Solid-harmonic (spherical) expansion operators.

This is the representation named by the paper ("retained terms in the
spherical harmonics expansion").  We use the scaled complex solid
harmonics of Epton & Dembart (1995):

    R_n^m(v) = rho^n  P_n^m(cos t) e^{i m p} / (n+m)!      (regular)
    I_n^m(v) = (n-m)! P_n^m(cos t) e^{i m p} / rho^{n+1}   (irregular)

with P_n^m carrying the Condon–Shortley phase and negative orders defined
by P_n^{-m} = (-1)^m (n-m)!/(n+m)! P_n^m.  Two addition theorems — both
verified numerically in the test suite — generate every operator:

    (A) R_n^m(a+b) = sum_{j<=n,k} R_j^k(a) R_{n-j}^{m-k}(b)            (exact)
    (B) I_n^m(a+b) = sum_{j,k} (-1)^j conj(R_j^k(a)) I_{n+j}^{m+k}(b)  (|a|<|b|)

Conventions used here:

* multipole about c:  phi(y) = sum M_n^m I_n^m(y-c),
  with  M_n^m = sum_i q_i conj(R_n^m(x_i - c))
* local about z:      phi(y) = sum L_n^m conj(R_n^m(y-z))

The operator interface matches
:class:`~repro.expansions.cartesian.CartesianExpansion` so the FMM driver
can swap backends (the `ablation-expansions` bench).  Gradients in this
backend use central differences of the (smooth) series — the Cartesian
backend is the production gradient path.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

__all__ = ["SphericalExpansion"]


def _legendre_table(x: np.ndarray, p: int, s: np.ndarray | None = None) -> np.ndarray:
    """Associated Legendre P_n^m(x) for 0 <= m <= n <= p.

    Shape (p+1, p+1, len(x)); entries with m > n are zero.  Includes the
    Condon–Shortley phase.  ``s`` is sin(theta); pass it when it is known
    exactly — reconstructing it as sqrt(1 - x^2) loses half the digits
    near the poles, which the m != 0 ladder amplifies.
    """
    x = np.asarray(x, dtype=float)
    if s is None:
        s = np.sqrt(np.maximum(0.0, 1.0 - x * x))
    P = np.zeros((p + 1, p + 1) + x.shape)
    P[0, 0] = 1.0
    for m in range(1, p + 1):
        P[m, m] = -(2 * m - 1) * s * P[m - 1, m - 1]
    for m in range(0, p):
        P[m + 1, m] = x * (2 * m + 1) * P[m, m]
    for m in range(0, p + 1):
        for n in range(m + 2, p + 1):
            P[n, m] = (x * (2 * n - 1) * P[n - 1, m] - (n + m - 1) * P[n - 2, m]) / (n - m)
    return P


def _spherical_coords(
    v: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(rho, cos_theta, sin_theta, phi) of each 3-vector (rows).

    sin_theta comes from the transverse radius hypot(x, y) directly, so it
    keeps full relative accuracy for near-axis vectors.
    """
    v = np.atleast_2d(np.asarray(v, dtype=float))
    rho = np.sqrt(np.einsum("ij,ij->i", v, v))
    trans = np.hypot(v[:, 0], v[:, 1])
    safe = np.where(rho > 0, rho, 1.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        ct = np.where(rho > 0, v[:, 2] / safe, 1.0)
        st = np.where(rho > 0, trans / safe, 0.0)
    phi = np.arctan2(v[:, 1], v[:, 0])
    return rho, np.clip(ct, -1.0, 1.0), np.clip(st, 0.0, 1.0), phi


@lru_cache(maxsize=None)
def _nm_index(p: int):
    """Flattened (n, m) enumeration, -n <= m <= n, n <= p."""
    ns, ms = [], []
    pos = {}
    for n in range(p + 1):
        for m in range(-n, n + 1):
            pos[(n, m)] = len(ns)
            ns.append(n)
            ms.append(m)
    return np.array(ns), np.array(ms), pos


@lru_cache(maxsize=None)
def _norm_factors(p: int):
    """Per-(n, m) scale factors of R (1/(n+m)!) and I ((n-m)!), plus the
    (-1)^m mirror signs, for m >= 0 entries."""
    ns, ms, _ = _nm_index(p)
    r_sc = np.array([1.0 / float(math.factorial(n + abs(m))) for n, m in zip(ns, ms)])
    i_sc = np.array([float(math.factorial(n - abs(m))) for n, m in zip(ns, ms)])
    mirror = np.array([(-1.0) ** abs(m) for m in ms])
    return r_sc, i_sc, mirror


def _solid_tables(vectors: np.ndarray, p: int) -> tuple[np.ndarray, np.ndarray]:
    """(R, I) tables: complex arrays of shape (n_vectors, (p+1)^2).

    I is only valid for nonzero vectors; callers evaluating I pass
    well-separated displacements.  Fully vectorized over both the points
    *and* the (p+1)^2 coefficients: the per-(n, m) assembly is three
    fancy-indexed gathers (Legendre row, azimuthal phase, radial power)
    combined elementwise.
    """
    v = np.atleast_2d(np.asarray(vectors, dtype=float))
    rho, ct, st, phi = _spherical_coords(v)
    P = _legendre_table(ct, p, st)  # (p+1, p+1, npts)
    ns, ms, _ = _nm_index(p)
    r_sc, i_sc, mirror = _norm_factors(p)
    ams = np.abs(ms)
    eim = np.exp(1j * np.outer(phi, np.arange(0, p + 1)))
    rho_safe = np.where(rho > 0, rho, 1.0)
    rho_n = rho_safe[:, None] ** np.arange(0, p + 1)[None, :]  # (npts, p+1)
    rho_zero = rho == 0.0
    rho_inv = 1.0 / np.where(rho_zero, 1.0, rho)
    rho_inv_n1 = rho_inv[:, None] ** (np.arange(0, p + 1)[None, :] + 1.0)
    # phase column per coefficient: e^{i|m|phi} for m >= 0, its conjugate
    # times the (-1)^{|m|} mirror sign for m < 0
    E = eim[:, ams]
    neg = ms < 0
    if np.any(neg):
        E = np.where(neg[None, :], np.conj(E) * mirror[None, :], E)
    base = P[ns, ams].T * E  # (npts, n_coeffs)
    R = (r_sc[None, :] * base) * rho_n[:, ns]
    I = (i_sc[None, :] * base) * rho_inv_n1[:, ns]
    if np.any(rho_zero):
        # R is well defined at 0 (only n=0 survives); I is singular there.
        R[rho_zero] = 0.0
        R[rho_zero, 0] = 1.0
        I[rho_zero] = np.inf
    return R, I


def _regular_table(vectors: np.ndarray, p: int) -> np.ndarray:
    return _solid_tables(vectors, p)[0]


def _irregular_table(vectors: np.ndarray, p: int) -> np.ndarray:
    return _solid_tables(vectors, p)[1]


class SphericalExpansion:
    """Spherical-harmonic FMM operators of order ``p`` (terms n <= p)."""

    backend = "spherical"

    def __init__(self, order: int) -> None:
        if order < 0:
            raise ValueError(f"order must be >= 0, got {order}")
        self.order = order
        self.ns, self.ms, self.pos = _nm_index(order)
        self.n_coeffs = len(self.ns)
        self._m2m_table = _build_shift_table(order, kind="m2m")
        self._l2l_table = _build_shift_table(order, kind="l2l")
        self._m2l_table = _build_m2l_table(order)

    # ------------------------------------------------------------------ P2M
    def p2m(self, points, strengths, center) -> np.ndarray:
        """M_n^m = sum_i q_i conj(R_n^m(x_i - c))."""
        pts = np.atleast_2d(np.asarray(points, dtype=float)) - np.asarray(center)
        q = np.asarray(strengths, dtype=float).reshape(-1)
        R = _regular_table(pts, self.order)
        return q @ np.conj(R)

    def p2m_dipole(self, points, moments, center) -> np.ndarray:
        """Dipole P2M via the exact two-charge limit (charges ±|p|/(2h) at
        x ± h p̂ reproduce the dipole field up to O(h^2))."""
        return _dipole_limit(self.p2m, points, moments, center, self.n_coeffs)

    # ------------------------------------------------------------------ M2M
    def m2m(self, moments, shift) -> np.ndarray:
        """Translate multipole by ``shift = c_new - c_old``.

        M_n^m(new) = sum_{j,k} conj(R_j^k(c_old - c_new)) M_{n-j}^{m-k}(old).
        """
        t = -np.asarray(shift, dtype=float).reshape(1, 3)
        Rt = np.conj(_regular_table(t, self.order)[0])
        out_idx, in_idx, r_idx = self._m2m_table
        out = np.zeros(self.n_coeffs, dtype=complex)
        np.add.at(out, out_idx, Rt[r_idx] * moments[in_idx])
        return out

    # ---------------------------------------------------- per-body bases
    # Row bases for the batched endpoint operations of the far-field
    # engine (``rel = x - center``): summing/dotting rows reproduces the
    # per-node operators above.
    def p2m_basis(self, rel: np.ndarray) -> np.ndarray:
        return np.conj(_regular_table(np.atleast_2d(rel), self.order))

    def l2p_basis(self, rel: np.ndarray) -> np.ndarray:
        # identical to the P2M rows: both sides use conj(R_n^m(rel))
        return np.conj(_regular_table(np.atleast_2d(rel), self.order))

    def p2l_basis(self, rel: np.ndarray) -> np.ndarray:
        signs = (-1.0) ** self.ns
        return signs[None, :] * _irregular_table(-np.atleast_2d(rel), self.order)

    def m2p_basis(self, rel: np.ndarray) -> np.ndarray:
        return _irregular_table(np.atleast_2d(rel), self.order)

    def m2p_grad_basis(self, rel: np.ndarray) -> np.ndarray:
        return _irregular_table(np.atleast_2d(rel), self.order + 1)

    def p2m_dipole_rows(self, rel, moments, ptr) -> np.ndarray:
        """Per-body dipole P2M rows; group sums over the CSR segments of
        ``ptr`` reproduce :meth:`p2m_dipole` of each group (same two-charge
        limit, with the finite-difference step chosen per group exactly as
        :func:`_dipole_limit` does per call)."""
        return _dipole_limit_rows(self.p2m_basis, rel, moments, ptr, self.n_coeffs)

    def p2l_dipole_rows(self, rel, moments, ptr) -> np.ndarray:
        """Per-body dipole P2L rows (group sums reproduce :meth:`p2l_dipole`)."""
        return _dipole_limit_rows(self.p2l_basis, rel, moments, ptr, self.n_coeffs)

    # -------------------------------------------------- geometry-class ops
    # An octree quantizes geometry: per level there are <= 8 distinct
    # parent<->child offsets and a bounded family of well-separated M2L
    # displacements.  These builders materialize the linear operator of one
    # such *class* as a dense row-applied matrix (``out_rows = in_rows @ A``)
    # so the far-field engine can translate every pair of a class with one
    # matmul.  All three are exact reshapes of the flattened addition-
    # theorem tables used by the per-pair methods above.
    def m2m_class_operator(self, shift) -> np.ndarray:
        """Dense row-applied M2M for one fixed ``shift = c_new - c_old``."""
        t = -np.asarray(shift, dtype=float).reshape(1, 3)
        Rt = np.conj(_regular_table(t, self.order)[0])
        out_idx, in_idx, r_idx = self._m2m_table
        A = np.zeros((self.n_coeffs, self.n_coeffs), dtype=complex)
        np.add.at(A, (in_idx, out_idx), Rt[r_idx])
        return A

    def l2l_class_operator(self, shift) -> np.ndarray:
        """Dense row-applied L2L for one fixed ``shift = z_new - z_old``."""
        t = np.asarray(shift, dtype=float).reshape(1, 3)
        Rt = np.conj(_regular_table(t, self.order)[0])
        out_idx, in_idx, r_idx = self._l2l_table
        A = np.zeros((self.n_coeffs, self.n_coeffs), dtype=complex)
        np.add.at(A, (in_idx, out_idx), Rt[r_idx])
        return A

    def m2l_class_operator(self, displacement) -> np.ndarray:
        """Dense row-applied M2L for one fixed displacement ``z - c``."""
        d = np.asarray(displacement, dtype=float).reshape(1, 3)
        I = _irregular_table(d, 2 * self.order)[0]
        out_idx, in_idx, i_idx, sign = self._m2l_table
        A = np.zeros((self.n_coeffs, self.n_coeffs), dtype=complex)
        np.add.at(A, (in_idx, out_idx), sign * I[i_idx])
        return A

    def l2p_gradient_matrices(self) -> tuple[np.ndarray, ...]:
        """Row-applied gradient maps: ``G_k = locals @ A_k`` reproduces
        :func:`_regular_gradient_coeffs` for a whole batch of locals."""
        return _regular_gradient_matrices(self.order)

    def m2p_gradient_matrices(self) -> tuple[np.ndarray, ...]:
        """Row-applied maps into the order+1 irregular basis:
        ``G_k = moments @ A_k`` reproduces :func:`_irregular_gradient_coeffs`."""
        return _irregular_gradient_matrices(self.order)

    # ------------------------------------------------------------------ M2L
    def m2l(self, moments, displacement) -> np.ndarray:
        return self.m2l_batch(
            np.asarray(moments)[None, :], np.asarray(displacement, dtype=float)[None, :]
        )[0]

    def m2l_batch(self, moments, displacements) -> np.ndarray:
        """L_j^k = (-1)^j sum_{n,m} M_n^m I_{n+j}^{m+k}(z - c).

        ``displacements[i] = z_local - c_multipole``.
        """
        M = np.atleast_2d(np.asarray(moments))
        D = np.atleast_2d(np.asarray(displacements, dtype=float))
        I = _irregular_table(D, 2 * self.order)
        out_idx, in_idx, i_idx, sign = self._m2l_table
        vals = sign[None, :] * M[:, in_idx] * I[:, i_idx]
        out = np.zeros((M.shape[0], self.n_coeffs), dtype=complex)
        np.add.at(out.T, out_idx, vals.T)
        return out

    # ------------------------------------------------------------------ L2L
    def l2l(self, local, shift) -> np.ndarray:
        """Translate local expansion by ``shift = z_new - z_old``.

        L'_j^k = sum_{n>=j} L_n^m conj(R_{n-j}^{m-k}(shift)).
        """
        t = np.asarray(shift, dtype=float).reshape(1, 3)
        Rt = np.conj(_regular_table(t, self.order)[0])
        out_idx, in_idx, r_idx = self._l2l_table
        out = np.zeros(self.n_coeffs, dtype=complex)
        np.add.at(out, out_idx, Rt[r_idx] * local[in_idx])
        return out

    # ------------------------------------------------------------------ L2P
    def l2p(self, local, targets, center) -> np.ndarray:
        """phi(y) = Re sum L_n^m conj(R_n^m(y - z))."""
        pts = np.atleast_2d(np.asarray(targets, dtype=float)) - np.asarray(center)
        R = _regular_table(pts, self.order)
        return np.real(np.conj(R) @ local)

    def l2p_gradient(self, local, targets, center) -> np.ndarray:
        """Analytic gradient via the regular-harmonic ladder identities

            dz R_n^m = R_{n-1}^m,
            (dx + i dy) R_n^m = R_{n-1}^{m+1},
            (dx - i dy) R_n^m = -R_{n-1}^{m-1}

        (verified numerically in the test suite).  The gradient of
        phi = Re sum L_n^m conj(R_n^m) is evaluated as three derived
        coefficient vectors against the same conj(R) table.
        """
        pts = np.atleast_2d(np.asarray(targets, dtype=float)) - np.asarray(center)
        Rbar = np.conj(_regular_table(pts, self.order))
        grads = _regular_gradient_coeffs(self.order, np.asarray(local))
        out = np.empty((pts.shape[0], 3))
        for k in range(3):
            out[:, k] = np.real(Rbar @ grads[k])
        return out

    # ------------------------------------------------------------------ M2P
    def m2p(self, moments, targets, center) -> np.ndarray:
        """phi(y) = Re sum M_n^m I_n^m(y - c)."""
        pts = np.atleast_2d(np.asarray(targets, dtype=float)) - np.asarray(center)
        I = _irregular_table(pts, self.order)
        return np.real(I @ moments)

    def m2p_gradient(self, moments, targets, center) -> np.ndarray:
        """Analytic gradient via the irregular-harmonic ladder identities

            dz I_n^m = -I_{n+1}^m,
            (dx + i dy) I_n^m = I_{n+1}^{m+1},
            (dx - i dy) I_n^m = -I_{n+1}^{m-1}.
        """
        pts = np.atleast_2d(np.asarray(targets, dtype=float)) - np.asarray(center)
        I = _irregular_table(pts, self.order + 1)
        grads = _irregular_gradient_coeffs(self.order, np.asarray(moments))
        out = np.empty((pts.shape[0], 3))
        for k in range(3):
            out[:, k] = np.real(I @ grads[k])
        return out

    # ------------------------------------------------------------------ P2L
    def p2l(self, points, strengths, center) -> np.ndarray:
        """L_j^k = sum_i q_i (-1)^j I_j^k(z - x_i)."""
        pts = np.asarray(center) - np.atleast_2d(np.asarray(points, dtype=float))
        q = np.asarray(strengths, dtype=float).reshape(-1)
        I = _irregular_table(pts, self.order)
        signs = (-1.0) ** self.ns
        return signs * (q @ I)

    def p2l_dipole(self, points, moments, center) -> np.ndarray:
        return _dipole_limit(self.p2l, points, moments, center, self.n_coeffs)


# --------------------------------------------------------------------------
# table builders
# --------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _build_shift_table(p: int, *, kind: str):
    """Flattened (out, in, R-index) triples for M2M ('m2m') or L2L ('l2l').

    m2m:  out (n, m) <- in (n-j, m-k) with factor R-table[(j, k)]
    l2l:  out (j, k) <- in (n, m)     with factor R-table[(n-j, m-k)]
    """
    ns, ms, pos = _nm_index(p)
    out_idx, in_idx, r_idx = [], [], []
    for o_lin, (n, m) in enumerate(zip(ns, ms)):
        for j in range(0, p + 1):
            for k in range(-j, j + 1):
                if kind == "m2m":
                    nn, mm = n - j, m - k
                    if nn < 0 or abs(mm) > nn:
                        continue
                    out_idx.append(o_lin)
                    in_idx.append(pos[(nn, mm)])
                    r_idx.append(pos[(j, k)])
                else:  # l2l: out (n, m) <- in (n', m') with n' >= n
                    nn, mm = n + j, m + k
                    if nn > p or abs(mm) > nn:
                        continue
                    out_idx.append(o_lin)
                    in_idx.append(pos[(nn, mm)])
                    r_idx.append(pos[(j, k)])
    return np.array(out_idx), np.array(in_idx), np.array(r_idx)


@lru_cache(maxsize=None)
def _build_m2l_table(p: int):
    """Flattened (out, in, I-index, sign) for the M2L conversion."""
    ns, ms, pos = _nm_index(p)
    _, _, pos2 = _nm_index(2 * p)
    out_idx, in_idx, i_idx, sign = [], [], [], []
    for j_lin, (j, k) in enumerate(zip(ns, ms)):
        for n_lin, (n, m) in enumerate(zip(ns, ms)):
            nm, mm = n + j, m + k
            if abs(mm) > nm:
                continue
            out_idx.append(j_lin)
            in_idx.append(n_lin)
            i_idx.append(pos2[(nm, mm)])
            sign.append((-1.0) ** j)
    return (
        np.array(out_idx),
        np.array(in_idx),
        np.array(i_idx),
        np.array(sign),
    )


def _dipole_limit(p2x, points, moments, center, n_coeffs):
    """Two-charge limit shared by p2m_dipole / p2l_dipole."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    p = np.atleast_2d(np.asarray(moments, dtype=float))
    norm = np.linalg.norm(p, axis=1)
    keep = norm > 0
    if not np.any(keep):
        return np.zeros(n_coeffs, dtype=complex)
    pts, p, norm = pts[keep], p[keep], norm[keep]
    scale = float(np.max(np.linalg.norm(pts - np.asarray(center), axis=1), initial=1e-3))
    h = 1e-5 * max(scale, 1e-12)
    unit = p / norm[:, None]
    plus = p2x(pts + h * unit, norm / (2 * h), center)
    minus = p2x(pts - h * unit, -norm / (2 * h), center)
    return plus + minus


def _dipole_limit_rows(basis_fn, rel, moments, ptr, n_coeffs) -> np.ndarray:
    """Per-body rows of the two-charge dipole limit.

    ``ptr`` is the CSR pointer partitioning the rows into groups; the
    finite-difference step is chosen *per group* from the kept (nonzero
    moment) bodies, bit-for-bit matching what :func:`_dipole_limit`
    computes when handed that group alone — so segment sums of the result
    equal the per-group scalar operators.
    """
    rel = np.atleast_2d(np.asarray(rel, dtype=float))
    p = np.atleast_2d(np.asarray(moments, dtype=float))
    ptr = np.asarray(ptr, dtype=np.int64)
    n_groups = ptr.size - 1
    gid = np.repeat(np.arange(n_groups), np.diff(ptr))
    rows = np.zeros((rel.shape[0], n_coeffs), dtype=complex)
    norm = np.linalg.norm(p, axis=1)
    keep = norm > 0
    if not np.any(keep):
        return rows
    r = np.linalg.norm(rel, axis=1)
    scale = np.full(n_groups, 1e-3)
    np.maximum.at(scale, gid[keep], r[keep])
    h = 1e-5 * np.maximum(scale, 1e-12)
    hb = h[gid[keep]][:, None]
    unit = p[keep] / norm[keep][:, None]
    w = (norm[keep] / (2.0 * hb[:, 0]))[:, None]
    plus = basis_fn(rel[keep] + hb * unit)
    minus = basis_fn(rel[keep] - hb * unit)
    rows[keep] = w * (plus - minus)
    return rows


def _regular_gradient_coeffs(p: int, local: np.ndarray) -> list[np.ndarray]:
    """Coefficient vectors G_k with grad_k phi = Re sum G_k conj(R).

    For phi = Re sum L_n^m conj(R_n^m):
      dx: conj(dx R_n^m) = [conj R_{n-1}^{m+1} - conj R_{n-1}^{m-1}] / 2
      dy: conj(dy R_n^m) = i [conj R_{n-1}^{m+1} + conj R_{n-1}^{m-1}] / 2
      dz: conj(dz R_n^m) =  conj R_{n-1}^m
    """
    ns, ms, pos = _nm_index(p)
    gx = np.zeros(len(ns), dtype=complex)
    gy = np.zeros(len(ns), dtype=complex)
    gz = np.zeros(len(ns), dtype=complex)
    for j, (n, m) in enumerate(zip(ns, ms)):
        L = local[j]
        if n == 0 or L == 0:
            continue
        if abs(m + 1) <= n - 1:
            tgt = pos[(n - 1, m + 1)]
            gx[tgt] += L / 2.0
            gy[tgt] += 1j * L / 2.0
        if abs(m - 1) <= n - 1:
            tgt = pos[(n - 1, m - 1)]
            gx[tgt] -= L / 2.0
            gy[tgt] += 1j * L / 2.0
        if abs(m) <= n - 1:
            gz[pos[(n - 1, m)]] += L
    return [gx, gy, gz]


def _irregular_gradient_coeffs(p: int, moments: np.ndarray) -> list[np.ndarray]:
    """Coefficient vectors G_k with grad_k phi = Re sum G_k I (order p+1).

    For phi = Re sum M_n^m I_n^m:
      dx I_n^m = [I_{n+1}^{m+1} - I_{n+1}^{m-1}] / 2
      dy I_n^m = -i [I_{n+1}^{m+1} + I_{n+1}^{m-1}] / 2
      dz I_n^m = -I_{n+1}^m
    """
    ns, ms, pos = _nm_index(p)
    _, _, pos_big = _nm_index(p + 1)
    size = (p + 2) ** 2
    gx = np.zeros(size, dtype=complex)
    gy = np.zeros(size, dtype=complex)
    gz = np.zeros(size, dtype=complex)
    for j, (n, m) in enumerate(zip(ns, ms)):
        M = moments[j]
        if M == 0:
            continue
        up = pos_big[(n + 1, m + 1)]
        dn = pos_big[(n + 1, m - 1)]
        gx[up] += M / 2.0
        gx[dn] -= M / 2.0
        gy[up] += -1j * M / 2.0
        gy[dn] += -1j * M / 2.0
        gz[pos_big[(n + 1, m)]] -= M
    return [gx, gy, gz]


@lru_cache(maxsize=None)
def _regular_gradient_matrices(p: int) -> tuple[np.ndarray, ...]:
    """Matrices A_k with ``_regular_gradient_coeffs(p, L)[k] == L @ A_k``."""
    n = (p + 1) ** 2
    mats = tuple(np.zeros((n, n), dtype=complex) for _ in range(3))
    eye = np.eye(n)
    for j in range(n):
        gx, gy, gz = _regular_gradient_coeffs(p, eye[j])
        for A, g in zip(mats, (gx, gy, gz)):
            A[j] = g
    return mats


@lru_cache(maxsize=None)
def _irregular_gradient_matrices(p: int) -> tuple[np.ndarray, ...]:
    """Matrices A_k with ``_irregular_gradient_coeffs(p, M)[k] == M @ A_k``."""
    n = (p + 1) ** 2
    big = (p + 2) ** 2
    mats = tuple(np.zeros((n, big), dtype=complex) for _ in range(3))
    eye = np.eye(n)
    for j in range(n):
        gx, gy, gz = _irregular_gradient_coeffs(p, eye[j])
        for A, g in zip(mats, (gx, gy, gz)):
            A[j] = g
    return mats


def _central_difference(f, targets, rel_h: float = 1e-6):
    pts = np.atleast_2d(np.asarray(targets, dtype=float))
    h = rel_h * (1.0 + float(np.max(np.abs(pts))))
    grad = np.empty((pts.shape[0], 3))
    for k in range(3):
        e = np.zeros(3)
        e[k] = h
        grad[:, k] = (f(pts + e) - f(pts - e)) / (2 * h)
    return grad
