"""Multipole/local expansion machinery.

Two interchangeable backends implement the six FMM operators (plus the
adaptive M2P/P2L extras):

* :mod:`repro.expansions.cartesian` — Cartesian Taylor expansions built on
  scaled derivative tensors of 1/r (Duan–Krasny recurrence); the default.
* :mod:`repro.expansions.spherical` — classical solid-harmonic expansions
  (the representation named in the paper, "retained terms in the spherical
  harmonics expansion").
"""

from repro.expansions.multiindex import MultiIndexSet
from repro.expansions.derivatives import scaled_derivative_tensors
from repro.expansions.cartesian import CartesianExpansion
from repro.expansions.spherical import SphericalExpansion

__all__ = [
    "MultiIndexSet",
    "scaled_derivative_tensors",
    "CartesianExpansion",
    "SphericalExpansion",
]
