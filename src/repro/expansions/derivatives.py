"""Scaled derivative tensors of the Laplace Green's function.

For G(d) = 1/|d| we need the scaled derivatives

    b_alpha(d) = (D^alpha G)(d) / alpha!

for all |alpha| <= order, vectorized over many displacement vectors d.
They satisfy the Duan–Krasny-style recurrence (harmonicity of G):

    n |d|^2 b_k = -[ (2n-1) sum_i d_i b_{k-e_i} + (n-1) sum_i b_{k-2e_i} ],

with n = |k| and b_0 = 1/|d|.  Terms with a negative index component
vanish.  Working with the *scaled* derivatives keeps magnitudes bounded
and removes all factorials from the M2L contraction.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.expansions.multiindex import MultiIndexSet

__all__ = ["scaled_derivative_tensors", "derivative_recurrence_plan"]


@lru_cache(maxsize=None)
def derivative_recurrence_plan(order: int):
    """Precompute, per multi-index, the source positions for the recurrence.

    Returns ``(mis, steps)`` where ``steps[j]`` for |k_j| >= 1 is a tuple
    ``(n, first, second)``; ``first`` lists (axis, position of k - e_axis)
    and ``second`` lists positions of k - 2 e_axis (only in-range entries).
    """
    mis = MultiIndexSet(order)
    steps = []
    for j in range(mis.n):
        k = mis.indices[j]
        n = int(mis.degrees[j])
        if n == 0:
            steps.append(None)
            continue
        first = []
        second = []
        for axis in range(3):
            if k[axis] >= 1:
                down = k.copy()
                down[axis] -= 1
                first.append((axis, mis.position(tuple(down))))
            if k[axis] >= 2:
                down2 = k.copy()
                down2[axis] -= 2
                second.append(mis.position(tuple(down2)))
        steps.append((n, tuple(first), tuple(second)))
    return mis, tuple(steps)


def scaled_derivative_tensors(displacements: np.ndarray, order: int) -> np.ndarray:
    """b_alpha(d) for all |alpha| <= order; shape (m, n_indices).

    ``displacements`` is (m, 3) and must be nonzero vectors (the FMM only
    ever evaluates these between well-separated cell centers).
    """
    d = np.atleast_2d(np.asarray(displacements, dtype=float))
    m = d.shape[0]
    mis, steps = derivative_recurrence_plan(order)
    r2 = np.einsum("mk,mk->m", d, d)
    if np.any(r2 <= 0.0):
        raise ValueError("zero displacement passed to derivative tensors")
    inv_r2 = 1.0 / r2
    out = np.empty((m, mis.n))
    out[:, 0] = np.sqrt(inv_r2)
    for j in range(1, mis.n):
        n, first, second = steps[j]
        acc = np.zeros(m)
        for axis, pos in first:
            acc += d[:, axis] * out[:, pos]
        acc *= 2 * n - 1
        if second and n > 1:
            s = np.zeros(m)
            for pos in second:
                s += out[:, pos]
            acc += (n - 1) * s
        out[:, j] = -(acc * inv_r2) / n
    return out
