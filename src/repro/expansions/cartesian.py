"""Cartesian Taylor expansion operators for the Laplace kernel.

Representation
--------------
* Multipole expansion of a cell with center c:
      M_alpha = sum_i q_i (c - x_i)^alpha            (no factorials)
  giving the far potential  phi(y) = sum_alpha M_alpha b_alpha(y - c)
  with the scaled derivatives b_alpha of :mod:`repro.expansions.derivatives`.
* Local expansion about z:  phi(y) = sum_beta L_beta (y - z)^beta.

All operators are linear maps with precomputed combinatorial tables from
:class:`repro.expansions.multiindex.MultiIndexSet`; per-geometry matrices
(M2M/L2L shifts) are cached since an octree only ever uses 8 child offsets
per level.

Dipole sources (moment p at x, field (p . d)/r^3) are supported in P2M and
P2L; this is what the composite Stokeslet far field builds on.
"""

from __future__ import annotations

import numpy as np

from repro.expansions.derivatives import scaled_derivative_tensors
from repro.expansions.multiindex import MultiIndexSet

__all__ = ["CartesianExpansion"]

#: chunk size for batched M2L (bounds the (chunk, n, n) temporary)
_M2L_CHUNK = 1024


class CartesianExpansion:
    """Factory for all expansion operators at a fixed order ``p``."""

    backend = "cartesian"

    def __init__(self, order: int) -> None:
        if order < 0:
            raise ValueError(f"order must be >= 0, got {order}")
        self.order = order
        self.mis = MultiIndexSet(order)
        self.mis_big = MultiIndexSet(2 * order)
        self.mis_plus = MultiIndexSet(order + 1)
        self._shift_cache: dict[tuple, np.ndarray] = {}

    @property
    def n_coeffs(self) -> int:
        return self.mis.n

    # ------------------------------------------------------------------ P2M
    def p2m(self, points: np.ndarray, strengths: np.ndarray, center: np.ndarray) -> np.ndarray:
        """Multipole moments of monopole sources about ``center``."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        q = np.asarray(strengths, dtype=float).reshape(-1)
        P = self.mis.powers(np.asarray(center) - pts)  # (n_pts, n_coeffs)
        return q @ P

    def p2m_dipole(self, points: np.ndarray, moments: np.ndarray, center: np.ndarray) -> np.ndarray:
        """Multipole moments of dipole sources (field (p . d)/r^3).

        M_alpha = -sum_s sum_k p_k alpha_k (c - x_s)^(alpha - e_k).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        p = np.atleast_2d(np.asarray(moments, dtype=float))
        P = self.mis.powers(np.asarray(center) - pts)
        M = np.zeros(self.mis.n)
        for k, (src, dst, coef) in enumerate(self.mis.gradient_tables()):
            # contribution to coefficient alpha=src from monomial at dst
            M[src] += -coef * (p[:, k] @ P[:, dst])
        return M

    # ------------------------------------------------------------------ M2M
    def m2m(self, moments: np.ndarray, shift: np.ndarray) -> np.ndarray:
        """Translate moments to a new center: ``shift = c_new - c_old``."""
        return self._m2m_matrix(shift) @ moments

    def _m2m_matrix(self, shift: np.ndarray) -> np.ndarray:
        key = ("m2m", tuple(np.round(np.asarray(shift, dtype=float), 15)))
        mat = self._shift_cache.get(key)
        if mat is None:
            mat = self.mis.m2m_matrix(np.asarray(shift, dtype=float))
            self._shift_cache[key] = mat
        return mat

    # ---------------------------------------------------- per-body bases
    # Row bases for the batched endpoint operations of the far-field
    # engine.  ``rel = x - center`` throughout; every basis B satisfies a
    # sum rule against the matching per-node operator:
    #   p2m:  M = sum_i q_i B_i          l2p:  phi_i = B_i . L
    #   p2l:  L = sum_i q_i B_i          m2p:  phi_i = B_i . M
    def p2m_basis(self, rel: np.ndarray) -> np.ndarray:
        return self.mis.powers(-np.atleast_2d(rel))

    def l2p_basis(self, rel: np.ndarray) -> np.ndarray:
        return self.mis.powers(np.atleast_2d(rel))

    def p2l_basis(self, rel: np.ndarray) -> np.ndarray:
        return scaled_derivative_tensors(-np.atleast_2d(rel), self.order)

    def m2p_basis(self, rel: np.ndarray) -> np.ndarray:
        return scaled_derivative_tensors(np.atleast_2d(rel), self.order)

    def m2p_grad_basis(self, rel: np.ndarray) -> np.ndarray:
        return scaled_derivative_tensors(np.atleast_2d(rel), self.order + 1)

    def p2m_dipole_rows(self, rel: np.ndarray, moments: np.ndarray, ptr) -> np.ndarray:
        """Per-body dipole P2M rows: summing a group's rows gives
        :meth:`p2m_dipole` of that group (``ptr`` is unused — the Cartesian
        dipole operators are exact, not a two-charge limit)."""
        P = self.mis.powers(-np.atleast_2d(rel))
        p = np.atleast_2d(moments)
        rows = np.zeros_like(P)
        for k, (src, dst, coef) in enumerate(self.mis.gradient_tables()):
            rows[:, src] += (-coef)[None, :] * p[:, k : k + 1] * P[:, dst]
        return rows

    def p2l_dipole_rows(self, rel: np.ndarray, moments: np.ndarray, ptr) -> np.ndarray:
        """Per-body dipole P2L rows (group sums reproduce :meth:`p2l_dipole`)."""
        Bbig = scaled_derivative_tensors(-np.atleast_2d(rel), self.order + 1)
        p = np.atleast_2d(moments)
        beta = self.mis.indices
        rows = np.zeros((Bbig.shape[0], self.mis.n))
        for k, (self_idx, raised_idx) in enumerate(self.mis.raise_tables()):
            coef = (beta[self_idx, k] + 1).astype(float)
            rows[:, self_idx] += -coef[None, :] * p[:, k : k + 1] * Bbig[:, raised_idx]
        return rows

    # -------------------------------------------------- geometry-class ops
    # Row-applied dense operators for one *geometry class* (a fixed shift
    # or M2L displacement, of which an octree level has only a handful);
    # ``out_rows = in_rows @ A``.  The far-field engine applies one matmul
    # per class instead of one operator per pair.
    def m2m_class_operator(self, shift: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(self._m2m_matrix(shift).T)

    def l2l_class_operator(self, shift: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(self._l2l_matrix(shift).T)

    def m2l_class_operator(self, displacement: np.ndarray) -> np.ndarray:
        """Dense M2L for one displacement: A[a, b] = C[a, b] * B[idx[a, b]]."""
        idx, coef = self.mis.m2l_tables()
        B = scaled_derivative_tensors(
            np.asarray(displacement, dtype=float).reshape(1, 3), 2 * self.order
        )[0]
        return B[idx] * coef

    def l2p_gradient_matrices(self) -> tuple[np.ndarray, ...]:
        """Matrices A_k turning locals into per-axis derivative coefficient
        vectors: ``w_k = local @ A_k`` with ``grad[:, k] = P @ w_k`` — the
        batched form of the scatter in :meth:`l2p_gradient`."""
        mats = []
        for src, dst, coef in self.mis.gradient_tables():
            A = np.zeros((self.mis.n, self.mis.n))
            A[src, dst] = coef
            mats.append(A)
        return tuple(mats)

    def m2p_gradient_matrices(self) -> tuple[np.ndarray, ...]:
        """Matrices A_k into the order+1 derivative basis: ``g_k = moments
        @ A_k`` with ``grad[:, k] = B_big @ g_k`` (cf. :meth:`m2p_gradient`)."""
        alpha = self.mis.indices
        n_big = self.mis_plus.n
        mats = []
        for k, (self_idx, raised_idx) in enumerate(self.mis.raise_tables()):
            A = np.zeros((self.mis.n, n_big))
            A[self_idx, raised_idx] = (alpha[self_idx, k] + 1).astype(float)
            mats.append(A)
        return tuple(mats)

    # ------------------------------------------------------------------ M2L
    def m2l(self, moments: np.ndarray, displacement: np.ndarray) -> np.ndarray:
        """Convert one multipole to a local expansion.

        ``displacement = z_local - c_multipole`` (from source cell center to
        target cell center); must be well separated (nonzero).
        """
        L = self.m2l_batch(moments[None, :], np.asarray(displacement, dtype=float)[None, :])
        return L[0]

    def m2l_batch(self, moments: np.ndarray, displacements: np.ndarray) -> np.ndarray:
        """Batched M2L: row i converts moments[i] across displacements[i].

        L[i, b] = sum_a moments[i, a] * C[a, b] * B[i, idx[a, b]]
        where B are the order-2p scaled derivative tensors.
        """
        M = np.atleast_2d(np.asarray(moments, dtype=float))
        D = np.atleast_2d(np.asarray(displacements, dtype=float))
        if M.shape[0] != D.shape[0]:
            raise ValueError("moments and displacements must align")
        idx, coef = self.mis.m2l_tables()
        out = np.empty((M.shape[0], self.mis.n))
        for lo in range(0, M.shape[0], _M2L_CHUNK):
            hi = min(lo + _M2L_CHUNK, M.shape[0])
            B = scaled_derivative_tensors(D[lo:hi], 2 * self.order)
            # T[i, a, b] = coef[a, b] * B[i, idx[a, b]]
            T = B[:, idx] * coef[None, :, :]
            out[lo:hi] = np.einsum("ia,iab->ib", M[lo:hi], T)
        return out

    # ------------------------------------------------------------------ L2L
    def l2l(self, local: np.ndarray, shift: np.ndarray) -> np.ndarray:
        """Translate a local expansion: ``shift = z_new - z_old``."""
        return self._l2l_matrix(shift) @ local

    def _l2l_matrix(self, shift: np.ndarray) -> np.ndarray:
        key = ("l2l", tuple(np.round(np.asarray(shift, dtype=float), 15)))
        mat = self._shift_cache.get(key)
        if mat is None:
            mat = self.mis.l2l_matrix(np.asarray(shift, dtype=float))
            self._shift_cache[key] = mat
        return mat

    # ------------------------------------------------------------------ L2P
    def l2p(self, local: np.ndarray, targets: np.ndarray, center: np.ndarray) -> np.ndarray:
        """Potential of a local expansion at each target, shape (n,)."""
        P = self.mis.powers(np.atleast_2d(targets) - np.asarray(center))
        return P @ local

    def l2p_gradient(self, local: np.ndarray, targets: np.ndarray, center: np.ndarray) -> np.ndarray:
        """Gradient of the local expansion at each target, shape (n, 3)."""
        y = np.atleast_2d(np.asarray(targets, dtype=float)) - np.asarray(center)
        P = self.mis.powers(y)
        grad = np.empty((y.shape[0], 3))
        for k, (src, dst, coef) in enumerate(self.mis.gradient_tables()):
            w = np.zeros(self.mis.n)
            np.add.at(w, dst, coef * local[src])
            grad[:, k] = P @ w
        return grad

    # ------------------------------------------------------------------ M2P
    def m2p(self, moments: np.ndarray, targets: np.ndarray, center: np.ndarray) -> np.ndarray:
        """Direct far-field evaluation of a multipole at targets (W list)."""
        d = np.atleast_2d(np.asarray(targets, dtype=float)) - np.asarray(center)
        B = scaled_derivative_tensors(d, self.order)
        return B @ moments

    def m2p_gradient(self, moments: np.ndarray, targets: np.ndarray, center: np.ndarray) -> np.ndarray:
        """Gradient of a multipole evaluation at targets, shape (n, 3).

        d/dy_k phi = sum_alpha M_alpha (alpha_k + 1) b_(alpha + e_k)(y - c).
        """
        d = np.atleast_2d(np.asarray(targets, dtype=float)) - np.asarray(center)
        Bbig = scaled_derivative_tensors(d, self.order + 1)
        grad = np.empty((d.shape[0], 3))
        alpha = self.mis.indices
        for k, (self_idx, raised_idx) in enumerate(self.mis.raise_tables()):
            coef = (alpha[self_idx, k] + 1).astype(float) * moments[self_idx]
            grad[:, k] = Bbig[:, raised_idx] @ coef
        return grad

    # ------------------------------------------------------------------ P2L
    def p2l(self, points: np.ndarray, strengths: np.ndarray, center: np.ndarray) -> np.ndarray:
        """Local expansion about ``center`` due to distant monopoles (X list).

        L_beta = sum_i q_i b_beta(z - x_i).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        q = np.asarray(strengths, dtype=float).reshape(-1)
        B = scaled_derivative_tensors(np.asarray(center) - pts, self.order)
        return q @ B

    def p2l_dipole(self, points: np.ndarray, moments: np.ndarray, center: np.ndarray) -> np.ndarray:
        """Local expansion due to distant dipoles.

        L_beta = -sum_s sum_k p_k (beta_k + 1) b_(beta + e_k)(z - x_s).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        p = np.atleast_2d(np.asarray(moments, dtype=float))
        Bbig = scaled_derivative_tensors(np.asarray(center) - pts, self.order + 1)
        L = np.zeros(self.mis.n)
        beta = self.mis.indices
        for k, (self_idx, raised_idx) in enumerate(self.mis.raise_tables()):
            coef = (beta[self_idx, k] + 1).astype(float)
            L[self_idx] += -coef * (p[:, k] @ Bbig[:, raised_idx])
        return L
