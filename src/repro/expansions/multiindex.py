"""Multi-index bookkeeping for Cartesian Taylor expansions.

A :class:`MultiIndexSet` enumerates all 3D multi-indices with |alpha| <= p
in (degree, lexicographic) order and precomputes the combinatorial tables
the translation operators need: monomial powers, binomial shift matrices,
index maps for alpha+beta, and per-axis derivative maps.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["MultiIndexSet"]


def _enumerate_indices(order: int) -> np.ndarray:
    """All (a, b, c) with a+b+c <= order, sorted by degree then lex."""
    out = []
    for n in range(order + 1):
        for a in range(n, -1, -1):
            for b in range(n - a, -1, -1):
                out.append((a, b, n - a - b))
    return np.array(out, dtype=np.int64)


class MultiIndexSet:
    """Multi-indices |alpha| <= order with precomputed operator tables."""

    def __init__(self, order: int) -> None:
        if order < 0:
            raise ValueError(f"order must be >= 0, got {order}")
        self.order = order
        self.indices = _enumerate_indices(order)  # (n, 3)
        self.n = self.indices.shape[0]
        self.degrees = self.indices.sum(axis=1)
        self._pos = {tuple(ix): i for i, ix in enumerate(self.indices.tolist())}
        # factorial of each index: alpha! = a! b! c!
        fact = np.cumprod(np.concatenate([[1.0], np.arange(1, order + 1, dtype=float)]))
        self.factorials = (
            fact[self.indices[:, 0]] * fact[self.indices[:, 1]] * fact[self.indices[:, 2]]
        )

    # ------------------------------------------------------------------ basic
    def position(self, alpha: tuple[int, int, int]) -> int:
        """Linear position of a multi-index (KeyError when out of range)."""
        return self._pos[tuple(int(a) for a in alpha)]

    def __len__(self) -> int:
        return self.n

    # -------------------------------------------------------------- monomials
    def powers(self, vectors: np.ndarray) -> np.ndarray:
        """Monomials v^alpha for each vector: shape (m, n_indices).

        Built from per-axis power tables so the cost is O(m * (p + n)).
        """
        v = np.atleast_2d(np.asarray(vectors, dtype=float))
        m = v.shape[0]
        p = self.order
        # axis_pows[k] has shape (m, p+1): column j = v[:, k]**j
        pows = np.ones((3, m, p + 1))
        for k in range(3):
            np.cumprod(np.broadcast_to(v[:, k, None], (m, p)), axis=1, out=pows[k, :, 1:])
        ix = self.indices
        return pows[0][:, ix[:, 0]] * pows[1][:, ix[:, 1]] * pows[2][:, ix[:, 2]]

    # ---------------------------------------------------------- shift matrices
    def m2m_matrix(self, t: np.ndarray) -> np.ndarray:
        """Matrix T with M_parent = T @ M_child for shift ``t = c_new - c_old``.

        Entries T[a, b] = binom(alpha_a, beta_b) * t^(alpha_a - beta_b) for
        beta_b <= alpha_a (componentwise), zero otherwise.  This follows from
        M~_alpha(c') = sum_i q_i (c' - x_i)^alpha with c' - x = t + (c - x).
        """
        rows, cols, diff_pos, binom = self._subset_table()
        mono = self.powers(np.asarray(t, dtype=float).reshape(1, 3))[0]
        T = np.zeros((self.n, self.n))
        T[rows, cols] = binom * mono[diff_pos]
        return T

    def l2l_matrix(self, t: np.ndarray) -> np.ndarray:
        """Matrix T with L_child = T @ L_parent for shift ``t = c_child - c_parent``.

        L'_beta = sum_{gamma >= beta} binom(gamma, beta) t^(gamma-beta) L_gamma,
        i.e. the transpose sparsity pattern of M2M.
        """
        return self.m2m_matrix(t).T

    @lru_cache(maxsize=None)
    def _subset_table_cached(self) -> tuple:
        rows, cols, diffs, binoms = [], [], [], []
        ix = self.indices
        for a in range(self.n):
            alpha = ix[a]
            for b in range(self.n):
                beta = ix[b]
                if np.all(beta <= alpha):
                    rows.append(a)
                    cols.append(b)
                    diffs.append(self.position(tuple(alpha - beta)))
                    binoms.append(_binom3(alpha, beta))
        return (
            np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64),
            np.array(diffs, dtype=np.int64),
            np.array(binoms, dtype=float),
        )

    def _subset_table(self):
        return self._subset_table_cached()

    # ------------------------------------------------------------- m2l tables
    @lru_cache(maxsize=None)
    def m2l_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Tables for the M2L contraction L_b = sum_a M_a * C[a,b] * D[idx[a,b]].

        ``idx[a, b]`` is the position of alpha_a + beta_b in the order-2p
        index set; ``C[a, b] = prod_k binom(a_k + b_k, a_k)``.
        """
        big = MultiIndexSet(2 * self.order)
        ix = self.indices
        idx = np.empty((self.n, self.n), dtype=np.int64)
        coef = np.empty((self.n, self.n))
        for a in range(self.n):
            for b in range(self.n):
                s = ix[a] + ix[b]
                idx[a, b] = big.position(tuple(s))
                coef[a, b] = _binom3(s, ix[a])
        return idx, coef

    # --------------------------------------------------- gradient (L2P) tables
    @lru_cache(maxsize=None)
    def gradient_tables(self) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-axis tables (src, dst, coef) for d/dy_k of sum L_b (y-z)^b.

        d/dy_k (y-z)^beta = beta_k (y-z)^(beta - e_k): for each beta with
        beta_k > 0, coefficient L_beta contributes beta_k * L_beta to the
        monomial at position(beta - e_k).
        """
        out = []
        ix = self.indices
        for k in range(3):
            src, dst, coef = [], [], []
            for b in range(self.n):
                beta = ix[b].copy()
                if beta[k] > 0:
                    beta[k] -= 1
                    src.append(b)
                    dst.append(self.position(tuple(beta)))
                    coef.append(float(ix[b][k]))
            out.append(
                (
                    np.array(src, dtype=np.int64),
                    np.array(dst, dtype=np.int64),
                    np.array(coef, dtype=float),
                )
            )
        return out

    # ----------------------------------------------- raise maps (for M2P grad)
    @lru_cache(maxsize=None)
    def raise_tables(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-axis tables (self_idx, raised_idx) into the order+1 set.

        raised_idx[i] = position of alpha_i + e_k in MultiIndexSet(order+1);
        used for gradients of multipole evaluations, where
        d/dy_k b_alpha(y-c) = (alpha_k + 1) * b_(alpha + e_k)(y-c).
        """
        big = MultiIndexSet(self.order + 1)
        out = []
        for k in range(3):
            raised = np.empty(self.n, dtype=np.int64)
            for i in range(self.n):
                a = self.indices[i].copy()
                a[k] += 1
                raised[i] = big.position(tuple(a))
            out.append((np.arange(self.n, dtype=np.int64), raised))
        return out

    def __hash__(self) -> int:  # allow lru_cache on methods
        return hash(("MultiIndexSet", self.order))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MultiIndexSet) and other.order == self.order


def _binom3(upper: np.ndarray, lower: np.ndarray) -> float:
    """Product of per-component binomial coefficients binom(upper_k, lower_k)."""
    out = 1.0
    for u, l in zip(upper, lower):
        out *= _binom(int(u), int(l))
    return out


@lru_cache(maxsize=None)
def _binom(n: int, k: int) -> float:
    if k < 0 or k > n:
        return 0.0
    r = 1.0
    for i in range(min(k, n - k)):
        r = r * (n - i) / (i + 1)
    return round(r)
