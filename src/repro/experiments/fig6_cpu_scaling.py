"""Fig. 6 — CPU speedup vs core count on Test System B (32 cores, no GPU).

The paper runs 10M bodies in a Plummer distribution at fixed S on a
highly non-uniform octree (depth 16) and reports speedup relative to the
serial execution, observing slight superlinearity up to 16 cores (extra
L3 across sockets) and diminishing returns toward 32 (memory
saturation).

Our harness builds the real task DAG of the real tree (near field
included — System B has no GPUs) and simulates the work-stealing
scheduler at every core count.
"""

from __future__ import annotations

from repro.distributions.generators import plummer
from repro.experiments.common import default_kernel
from repro.machine.spec import system_b
from repro.runtime.scheduler import simulate_schedule
from repro.runtime.tasks import build_fmm_task_graph
from repro.tree.lists import build_interaction_lists
from repro.tree.octree import build_adaptive
from repro.util.records import EventLog

__all__ = ["run", "main"]


def run(
    *,
    n: int = 50000,
    S: int = 64,
    core_counts: tuple[int, ...] = (1, 2, 4, 8, 12, 16, 20, 24, 28, 32),
    order: int = 4,
    seed: int = 0,
) -> EventLog:
    ps = plummer(n, seed=seed)
    kernel = default_kernel()
    tree = build_adaptive(ps.positions, S)
    lists = build_interaction_lists(tree, folded=True)
    graph = build_fmm_task_graph(
        tree, lists, order=order, kernel=kernel, include_near_field=True
    )
    cpu = system_b().cpu
    serial = simulate_schedule(graph, cpu, 1).makespan
    log = EventLog()
    for k in core_counts:
        if k > cpu.n_cores:
            continue
        res = simulate_schedule(graph, cpu, k)
        log.add(
            cores=k,
            time=res.makespan,
            speedup=serial / res.makespan,
            utilization=res.utilization,
            tree_depth=tree.depth(),
        )
    return log


def main(**kwargs) -> EventLog:
    log = run(**kwargs)
    print("Fig. 6 — CPU speedup vs cores (Plummer, fixed S, System B analog)")
    print(log.to_table(["cores", "time", "speedup", "utilization"]))
    return log


if __name__ == "__main__":
    main()
