"""Experiment harnesses — one per table/figure of the paper's evaluation.

Every module exposes ``run(...)`` returning structured results and a
``main()`` that prints the same rows/series the paper reports.  The
benchmark suite under ``benchmarks/`` wraps these at reduced scale; pass
larger ``n``/``steps`` to approach the paper's sizes.
"""

from repro.experiments import (
    cluster_scaling,
    fig3_adaptive_cost,
    fig4_uniform_gap,
    fig6_cpu_scaling,
    table1_gpu_scaling,
    fig7_hetero_speedup,
    fig8_fig9_table2_strategies,
    fig10_finegrained,
    ablations,
)

__all__ = [
    "cluster_scaling",
    "fig3_adaptive_cost",
    "fig4_uniform_gap",
    "fig6_cpu_scaling",
    "table1_gpu_scaling",
    "fig7_hetero_speedup",
    "fig8_fig9_table2_strategies",
    "fig10_finegrained",
    "ablations",
]
