"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.laplace import GravityKernel
from repro.machine.executor import HeterogeneousExecutor, StepTiming
from repro.machine.spec import MachineSpec, system_a
from repro.tree.octree import AdaptiveOctree, build_adaptive

__all__ = [
    "default_kernel",
    "hetero_executor",
    "sweep_s",
    "geometric_s_values",
    "optimal_s",
]


def default_kernel() -> Kernel:
    """The gravitational test problem of §VIII-B (unit masses, G folded in)."""
    return GravityKernel(G=1.0, softening=1e-4)


def hetero_executor(
    *,
    n_cores: int = 10,
    n_gpus: int = 4,
    order: int = 4,
    kernel: Kernel | None = None,
    machine: MachineSpec | None = None,
    folded: bool = True,
) -> HeterogeneousExecutor:
    machine = machine if machine is not None else system_a()
    machine = machine.with_resources(n_cores=n_cores, n_gpus=min(n_gpus, machine.n_gpus))
    return HeterogeneousExecutor(
        machine, order=order, kernel=kernel or default_kernel(), folded=folded
    )


def geometric_s_values(lo: int = 16, hi: int = 2048, n: int = 12) -> list[int]:
    """A geometric ladder of S values for cost sweeps."""
    vals = np.unique(np.round(np.geomspace(lo, hi, n)).astype(int))
    return [int(v) for v in vals]


def sweep_s(
    points: np.ndarray,
    executor: HeterogeneousExecutor,
    s_values: list[int],
    *,
    tree_factory=build_adaptive,
) -> list[tuple[int, StepTiming, AdaptiveOctree]]:
    """Time one FMM step for every S; returns (S, timing, tree) triples."""
    out = []
    for S in s_values:
        tree = tree_factory(points, S)
        out.append((S, executor.time_step(tree), tree))
    return out


def optimal_s(
    points: np.ndarray,
    executor: HeterogeneousExecutor,
    s_values: list[int],
    *,
    tree_factory=build_adaptive,
) -> tuple[int, StepTiming]:
    """S minimizing the modeled compute time over the ladder."""
    best = None
    for S, timing, _ in sweep_s(points, executor, s_values, tree_factory=tree_factory):
        if best is None or timing.compute_time < best[1].compute_time:
            best = (S, timing)
    assert best is not None
    return best
