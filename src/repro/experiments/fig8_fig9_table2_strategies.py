"""Figs. 8–9 and Table II — dynamic workloads under three balancing
strategies (§IX-A).

The workload: a gravitational Plummer distribution "initially contained
within 1/64th of the simulation space", evolving over many time steps so
bodies expand and fall back toward the center of mass.  Strategies:

1. **static**  — optimal S chosen at the outset (binary search); the value
   of S is never changed and the tree structure never modified.
2. **enforce** — Enforce_S whenever the compute time runs more than 5%
   slower than the best time seen thus far.
3. **full**    — the complete Search/Incremental/Observation machinery with
   Enforce_S and FineGrainedOptimize.

Fig. 8 = per-step total time series; Fig. 9 = per-step S series;
Table II = totals, LB overhead %, and relative cost per step.
"""

from __future__ import annotations

import numpy as np

from repro.balance.config import BalancerConfig
from repro.distributions.generators import compact_plummer
from repro.kernels.laplace import GravityKernel
from repro.machine.spec import system_a
from repro.sim.driver import Simulation, SimulationConfig
from repro.util.records import EventLog

__all__ = ["STRATEGIES", "run", "table2", "main"]

STRATEGIES = ("static", "enforce", "full")


def run(
    *,
    n: int = 2000,
    steps: int = 300,
    dt: float = 1e-4,
    order: int = 3,
    n_cores: int = 10,
    n_gpus: int = 4,
    seed: int = 0,
    forces: str = "direct",
    strategies: tuple[str, ...] = STRATEGIES,
    velocity_scale: float = 1.5,
) -> dict[str, EventLog]:
    """Run the three strategies on identical initial conditions.

    The cluster starts compact (1/64th of the domain) and *hot*
    (``velocity_scale`` > 1 puts it above virial equilibrium), so it
    expands through the simulation space and partially falls back — the
    significantly-evolving workload of §IX-A.  ``dt`` resolves the
    cluster's dynamical time (~1e-3 at unit total mass and 1/80-domain
    scale radius).
    """
    machine = system_a().with_resources(n_cores=n_cores, n_gpus=n_gpus)
    out: dict[str, EventLog] = {}
    for strategy in strategies:
        # fresh identical initial conditions per run
        ps = compact_plummer(n, seed=seed, total_mass=1.0, velocity_scale=velocity_scale)
        kernel = GravityKernel(G=1.0, softening=1e-3)
        cfg = SimulationConfig(
            dt=dt,
            order=order,
            forces=forces,
            strategy=strategy,
            balancer=BalancerConfig(gap_threshold_frac=0.15, s_min=8, s_max=4096),
            seed=seed,
        )
        sim = Simulation(ps, kernel, machine, config=cfg)
        sim.run(steps)
        out[strategy] = sim.log
    return out


def table2(logs: dict[str, EventLog]) -> EventLog:
    """Aggregate the per-step logs into the paper's Table II columns."""
    rows = EventLog()
    per_step: dict[str, float] = {}
    for strategy, log in logs.items():
        compute = float(np.sum(log.column("compute_time", 0.0)))
        lb = float(np.sum(log.column("lb_time", 0.0)))
        steps = max(1, len(log))
        per_step[strategy] = (compute + lb) / steps
    ref = per_step.get("full", min(per_step.values()))
    for strategy, log in logs.items():
        compute = float(np.sum(log.column("compute_time", 0.0)))
        lb = float(np.sum(log.column("lb_time", 0.0)))
        rows.add(
            strategy=strategy,
            total_compute=compute,
            total_lb=lb,
            lb_pct_of_compute=100.0 * lb / compute if compute else 0.0,
            relative_cost_per_step=per_step[strategy] / ref if ref else 1.0,
        )
    return rows


def main(**kwargs) -> dict[str, EventLog]:
    logs = run(**kwargs)
    print("Fig. 8 — per-step total time (sampled every 10 steps)")
    header = "step  " + "  ".join(f"{s:>12s}" for s in logs)
    print(header)
    n_steps = len(next(iter(logs.values())))
    for i in range(0, n_steps, max(1, n_steps // 30)):
        row = f"{i:5d} " + "  ".join(
            f"{logs[s][i]['total_time']:12.6f}" for s in logs
        )
        print(row)
    print("\nFig. 9 — per-step S value (sampled)")
    for i in range(0, n_steps, max(1, n_steps // 15)):
        row = f"{i:5d} " + "  ".join(f"{logs[s][i]['S']:12d}" for s in logs)
        print(row)
    print("\nTable II — strategy summary")
    print(table2(logs).to_table())
    return logs


if __name__ == "__main__":
    main()
