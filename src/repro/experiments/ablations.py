"""Ablation studies for the design choices called out in DESIGN.md §5.

Each function returns an :class:`~repro.util.records.EventLog`; the
benchmark suite asserts the qualitative outcome.
"""

from __future__ import annotations

import time

import numpy as np

from repro.distributions.generators import plummer
from repro.experiments.common import default_kernel, geometric_s_values, hetero_executor
from repro.expansions.cartesian import CartesianExpansion
from repro.expansions.spherical import SphericalExpansion
from repro.fmm.accuracy import accuracy_report
from repro.fmm.evaluator import FMMSolver
from repro.gpu.model import GPUKernelModel
from repro.gpu.partition import NearFieldWorkItem, near_field_work_items, partition_targets
from repro.machine.spec import system_a
from repro.costmodel.coefficients import ObservedCoefficients
from repro.costmodel.predictor import predict_times
from repro.tree.lists import build_interaction_lists
from repro.tree.octree import build_adaptive
from repro.tree.uniform import build_uniform, uniform_depth_for
from repro.util.records import EventLog

__all__ = [
    "adaptive_vs_uniform",
    "barnes_hut_vs_fmm",
    "wx_lists_vs_folded",
    "expansion_backends",
    "gpu_partition_strategies",
    "coefficient_prediction_quality",
    "endpoint_offload",
]


def adaptive_vs_uniform(*, n: int = 20000, order: int = 4, seed: int = 0) -> EventLog:
    """Adaptive vs uniform decomposition at each tree's own best S.

    On a non-uniform (Plummer) distribution the adaptive tree should reach
    a lower optimal compute time (§I-B's motivation).
    """
    ps = plummer(n, seed=seed)
    executor = hetero_executor(order=order)
    log = EventLog()
    s_values = geometric_s_values(16, 2048, 12)
    for label, factory in (
        ("adaptive", lambda pts, S: build_adaptive(pts, S)),
        ("uniform", lambda pts, S: build_uniform(pts, depth=uniform_depth_for(n, S))),
    ):
        best = None
        for S in s_values:
            tree = factory(ps.positions, S)
            t = executor.time_step(tree)
            if best is None or t.compute_time < best[1]:
                best = (S, t.compute_time, len(tree.leaves()), tree.depth())
        log.add(
            decomposition=label,
            best_S=best[0],
            best_compute_time=best[1],
            n_leaves=best[2],
            depth=best[3],
        )
    return log


def wx_lists_vs_folded(*, n: int = 4000, order: int = 4, S: int = 40, seed: int = 0) -> EventLog:
    """CGR W/X lists (M2P/P2L) vs the paper's fold-into-P2P scheme.

    Folding moves W/X work into direct interactions: more P2P, no M2P/P2L,
    identical numerical results (to truncation error).
    """
    ps = plummer(n, seed=seed)
    kernel = default_kernel()
    log = EventLog()
    results = {}
    for folded in (True, False):
        tree = build_adaptive(ps.positions, S)
        solver = FMMSolver(kernel, order=order, folded=folded)
        t0 = time.perf_counter()
        res = solver.solve(tree, ps.strengths, gradient=True)
        wall = time.perf_counter() - t0
        rep = accuracy_report(kernel, ps.positions, ps.strengths, res, sample=200, seed=seed)
        results[folded] = res
        log.add(
            scheme="folded" if folded else "cgr_wx",
            p2p_interactions=res.op_counts["P2P"],
            m2p_terms=res.op_counts["M2P"],
            p2l_terms=res.op_counts["P2L"],
            potential_rel_err=rep["potential_rel_err"],
            wall_s=wall,
        )
    agree = float(
        np.max(np.abs(results[True].potential - results[False].potential))
        / np.max(np.abs(results[True].potential))
    )
    log.add(scheme="cross_agreement", p2p_interactions=0, m2p_terms=0, p2l_terms=0,
            potential_rel_err=agree, wall_s=0.0)
    return log


def expansion_backends(*, n: int = 2000, order: int = 5, S: int = 50, seed: int = 0) -> EventLog:
    """Cartesian Taylor vs spherical-harmonic operators: accuracy + cost."""
    ps = plummer(n, seed=seed)
    kernel = default_kernel()
    log = EventLog()
    for name, expansion in (
        ("cartesian", CartesianExpansion(order)),
        ("spherical", SphericalExpansion(order)),
    ):
        tree = build_adaptive(ps.positions, S)
        solver = FMMSolver(kernel, expansion=expansion)
        t0 = time.perf_counter()
        res = solver.solve(tree, ps.strengths, gradient=False)
        wall = time.perf_counter() - t0
        rep = accuracy_report(kernel, ps.positions, ps.strengths, res, sample=200, seed=seed)
        log.add(
            backend=name,
            n_coeffs=expansion.n_coeffs,
            potential_rel_err=rep["potential_rel_err"],
            wall_s=wall,
        )
    return log


def gpu_partition_strategies(*, n: int = 30000, S: int = 128, n_gpus: int = 4, seed: int = 0) -> EventLog:
    """Interaction-count partitioning (paper) vs a naive equal-node split."""
    ps = plummer(n, seed=seed)
    tree = build_adaptive(ps.positions, S)
    lists = build_interaction_lists(tree, folded=True)
    items = near_field_work_items(lists)
    model = GPUKernelModel(system_a().gpus[0])
    log = EventLog()

    def naive_split(items: list[NearFieldWorkItem], k: int):
        size = (len(items) + k - 1) // k
        return [items[i * size : (i + 1) * size] for i in range(k)]

    for label, splitter in (("interaction_count", partition_targets), ("equal_nodes", naive_split)):
        parts = splitter(items, n_gpus)
        times = [model.time_items(p).kernel_time for p in parts]
        log.add(
            strategy=label,
            kernel_time=max(times),
            imbalance=max(times) / (sum(times) / len(times)),
        )
    return log


def barnes_hut_vs_fmm(*, n: int = 3000, seed: int = 0) -> EventLog:
    """§I's positioning claim: the FMM offers bounded precision more
    readily than Barnes-Hut.

    Sweeps Barnes-Hut over theta and the FMM over expansion order on the
    same Plummer cloud and reports (potential error, work) pairs, where
    work is body-level interaction counts for BH and the P2P+M2L-dominated
    FLOP estimate for the FMM.  At matched tight accuracy the FMM needs
    less work per digit (its error is also uniform, not
    worst-case-unbounded).
    """
    import numpy as np

    from repro.baselines import BarnesHut
    from repro.costmodel.flops import atomic_units
    from repro.kernels import direct_evaluate

    ps = plummer(n, seed=seed)
    kernel = default_kernel()
    tree = build_adaptive(ps.positions, S=16)
    exact = direct_evaluate(
        kernel, ps.positions, ps.positions, ps.strengths, exclude_self=True
    )[:, 0]
    norm = float(np.linalg.norm(exact))
    log = EventLog()
    for theta in (0.9, 0.6, 0.4, 0.25):
        res = BarnesHut(kernel, theta=theta).solve(tree, ps.strengths)
        err = float(np.linalg.norm(res.potential - exact)) / norm
        log.add(
            method=f"barnes_hut(theta={theta})",
            potential_rel_err=err,
            work=float(res.interactions) * kernel.interaction_flops(),
        )
    for order in (2, 4, 6):
        solver = FMMSolver(kernel, order=order)
        res = solver.solve(tree, ps.strengths)
        err = float(np.linalg.norm(res.potential - exact)) / norm
        units = atomic_units(order, kernel)
        work = sum(units[op] * res.op_counts.get(op, 0) for op in units)
        log.add(method=f"fmm(order={order})", potential_rel_err=err, work=work)

    # the failure regime: a net-neutral charge system defeats the monopole
    # treecode entirely (cells cancel), while the FMM is unaffected
    from repro.kernels import LaplaceKernel

    rng = np.random.default_rng(seed + 1)
    q = rng.choice([-1.0, 1.0], n)
    log_neutral_rows(log, tree, q, LaplaceKernel(), ps)
    return log


def log_neutral_rows(log, tree, q, lap, ps):
    import numpy as np

    from repro.baselines import BarnesHut
    from repro.kernels import direct_evaluate

    exact = direct_evaluate(lap, ps.positions, ps.positions, q, exclude_self=True)[:, 0]
    norm = float(np.linalg.norm(exact))
    bh = BarnesHut(lap, theta=0.4).solve(tree, q)
    log.add(
        method="barnes_hut(theta=0.4, neutral charges)",
        potential_rel_err=float(np.linalg.norm(bh.potential - exact)) / norm,
        work=float(bh.interactions) * lap.interaction_flops(),
    )
    res = FMMSolver(lap, order=4).solve(tree, q)
    from repro.costmodel.flops import atomic_units

    units = atomic_units(4, lap)
    log.add(
        method="fmm(order=4, neutral charges)",
        potential_rel_err=float(np.linalg.norm(res.potential - exact)) / norm,
        work=sum(units[op] * res.op_counts.get(op, 0) for op in units),
    )


def endpoint_offload(*, n: int = 20000, order: int = 8, seed: int = 0) -> EventLog:
    """§VIII-E's proposed extension: move P2M/L2P to the GPUs.

    The per-body P2M/L2P work is the CPU floor that caps the underpowered
    4-core configurations in Fig. 7; offloading it should lift exactly
    those configurations.  Reports the best-over-S compute time with and
    without the offload for the CPU-starved (4C+4G) and balanced (10C+2G)
    configurations.
    """
    ps = plummer(n, seed=seed)
    kernel = default_kernel()
    log = EventLog()
    for n_cores, n_gpus in ((4, 4), (10, 2)):
        for offload in (False, True):
            machine = system_a().with_resources(n_cores=n_cores, n_gpus=n_gpus)
            from repro.machine.executor import HeterogeneousExecutor

            ex = HeterogeneousExecutor(
                machine, order=order, kernel=kernel, offload_endpoints=offload
            )
            best = None
            for S in geometric_s_values(16, 2048, 12):
                tree = build_adaptive(ps.positions, S)
                t = ex.time_step(tree)
                if best is None or t.compute_time < best[1]:
                    best = (S, t.compute_time)
            log.add(
                config=f"{n_cores}C_{n_gpus}G",
                offload_endpoints=offload,
                best_S=best[0],
                best_compute_time=best[1],
            )
    return log


def coefficient_prediction_quality(*, n: int = 20000, order: int = 4, seed: int = 0) -> EventLog:
    """§IV-D validation: predict unseen-S compute times from coefficients
    observed at one S, compare against the executor's modeled times."""
    ps = plummer(n, seed=seed)
    executor = hetero_executor(order=order)
    coeffs = ObservedCoefficients()
    # observe at a mid-range S
    tree = build_adaptive(ps.positions, 128)
    timing = executor.time_step(tree)
    coeffs.update_from_registry(timing.cpu_registry, timing.gpu_p2p_coefficient)
    log = EventLog()
    for S in geometric_s_values(32, 1024, 8):
        tree = build_adaptive(ps.positions, S)
        lists = build_interaction_lists(tree, folded=True)
        actual = executor.time_step(tree, lists)
        pred = predict_times(lists.op_counts(), coeffs)
        log.add(
            S=S,
            predicted_cpu=pred.cpu_time,
            actual_cpu=actual.cpu_time,
            predicted_gpu=pred.gpu_time,
            actual_gpu=actual.gpu_time,
            cpu_rel_err=abs(pred.cpu_time - actual.cpu_time) / actual.cpu_time,
            gpu_rel_err=abs(pred.gpu_time - actual.gpu_time) / actual.gpu_time
            if actual.gpu_time
            else 0.0,
        )
    return log
