"""Fig. 3 — adaptive decomposition: CPU and GPU cost vs S change *gradually*.

"Adaptive distributions result in a gradual change in the cost of the CPU
and GPU work as a function of S."  The harness sweeps S over an adaptive
tree on a Plummer distribution and reports the modeled CPU (far-field)
and GPU (near-field) times; the series should be smooth, monotone in
opposite directions, with a crossover.
"""

from __future__ import annotations

from repro.distributions.generators import plummer
from repro.experiments.common import geometric_s_values, hetero_executor, sweep_s
from repro.util.records import EventLog

__all__ = ["run", "main"]


def run(
    *,
    n: int = 20000,
    s_values: list[int] | None = None,
    n_cores: int = 10,
    n_gpus: int = 4,
    order: int = 4,
    seed: int = 0,
) -> EventLog:
    """Sweep S on an adaptive tree; one row per S value."""
    ps = plummer(n, seed=seed)
    executor = hetero_executor(n_cores=n_cores, n_gpus=n_gpus, order=order)
    s_values = s_values or geometric_s_values(16, 2048, 14)
    log = EventLog()
    for S, timing, tree in sweep_s(ps.positions, executor, s_values):
        log.add(
            S=S,
            cpu_time=timing.cpu_time,
            gpu_time=timing.gpu_time,
            compute_time=timing.compute_time,
            n_leaves=len(tree.leaves()),
            depth=tree.depth(),
            gpu_efficiency=timing.gpu_efficiency,
        )
    return log


def main(**kwargs) -> EventLog:
    log = run(**kwargs)
    print("Fig. 3 — adaptive decomposition: CPU/GPU cost vs S (smooth curves)")
    print(log.to_table(["S", "cpu_time", "gpu_time", "compute_time", "n_leaves", "gpu_efficiency"]))
    return log


if __name__ == "__main__":
    main()
