"""Fig. 10 — FineGrainedOptimize on a static uniform workload (§IX-B).

"Two simulations of 200 time steps each using ten million sources in a
uniform distribution were carried out.  One simulation utilized
FineGrainedOptimize() and the other did not. ... The first 15 time steps
constitute the initial binary search for a good S realm.  For the
remainder of the time steps we achieve slightly more than a 3% advantage
per time step."

The fluid-dynamics (regularized Stokeslet) cost profile is used because
its M2L is ≈4x the gravitational one, widening the Uniform Gap that the
fine-grained pass bridges.  Forces are evaluated directly (the Stokeslet
far field enters only through its cost profile — see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.balance.config import BalancerConfig
from repro.distributions.generators import uniform_cube
from repro.kernels.stokeslet import RegularizedStokesletKernel
from repro.machine.executor import HeterogeneousExecutor
from repro.machine.spec import system_a
from repro.balance.controller import DynamicLoadBalancer
from repro.tree.lists import build_interaction_lists
from repro.tree.octree import AdaptiveOctree
from repro.util.records import EventLog

__all__ = ["run", "ratio_series", "main"]


def _run_one(
    points, *, steps, n_cores, n_gpus, order, fgo_enabled, drift_seed, drift_sigma=0.0
) -> EventLog:
    """A static (or, with ``drift_sigma`` > 0, quasi-static) run: the
    balancer manages S / tree shape; per-step total time is logged.

    The default is a perfectly static workload: at scaled-down N the
    uniform distribution sits on a knife edge where one whole octree level
    appears/disappears with S, and body drift can flip which side of that
    gap the Incremental state lands on — the deterministic run isolates
    the FineGrainedOptimize contribution the figure is about.
    """
    machine = system_a().with_resources(n_cores=n_cores, n_gpus=n_gpus)
    kernel = RegularizedStokesletKernel(epsilon=1e-2)
    executor = HeterogeneousExecutor(machine, order=order, kernel=kernel, folded=True)
    # the paper's 0.15 s gate on its ~3-9 s steps is a ~2-5% relative gap;
    # the tight gate is what makes the transitional-S FGO pass fire on the
    # uniform-gap workload
    cfg = BalancerConfig(
        gap_threshold_frac=0.04, s_min=8, s_max=4096, fgo_enabled=fgo_enabled
    )
    balancer = DynamicLoadBalancer(executor, config=cfg, mode="full")
    rng = np.random.default_rng(drift_seed)
    pts = points.copy()
    from repro.geometry.box import bounding_box

    root = bounding_box(points)
    root = type(root)(root.center, root.size * 1.2)
    tree = AdaptiveOctree(pts, balancer.S, root_box=root)
    log = EventLog()
    sigma = root.size * drift_sigma
    for step in range(steps):
        lists = build_interaction_lists(tree, folded=True)
        timing = executor.time_step(tree, lists)
        outcome = balancer.end_of_step(tree, timing)
        lb = outcome.lb_time
        log.add(
            step=step,
            total_time=timing.compute_time + lb,
            compute_time=timing.compute_time,
            lb_time=lb,
            S=balancer.S,
            state=outcome.state.value,
        )
        # optional drift, then rebuild (balancer asked) or refit
        if sigma > 0:
            pts += rng.normal(0.0, sigma, pts.shape)
            np.clip(pts, root.low + 1e-9, root.high - 1e-9, out=pts)
        if outcome.rebuild_S is not None:
            tree = AdaptiveOctree(pts, balancer.S, root_box=root)
        else:
            tree.points = pts
            tree.refit()
    return log


def run(
    *,
    n: int = 20000,
    steps: int = 120,
    n_cores: int = 10,
    n_gpus: int = 4,
    order: int = 4,
    seed: int = 0,
    drift_sigma: float = 0.0,
) -> dict[str, EventLog]:
    ps = uniform_cube(n, seed=seed)
    common = dict(
        steps=steps,
        n_cores=n_cores,
        n_gpus=n_gpus,
        order=order,
        drift_seed=seed + 1,
        drift_sigma=drift_sigma,
    )
    return {
        "with_fgo": _run_one(ps.positions, fgo_enabled=True, **common),
        "without_fgo": _run_one(ps.positions, fgo_enabled=False, **common),
    }


def ratio_series(logs: dict[str, EventLog]) -> list[float]:
    """Per-step ratio (time without FGO) / (time with FGO) — Fig. 10's y-axis."""
    without = logs["without_fgo"].column("total_time")
    with_ = logs["with_fgo"].column("total_time")
    return [w / v if v > 0 else 1.0 for w, v in zip(without, with_)]


def steady_state_advantage(logs: dict[str, EventLog], *, skip: int = 15) -> float:
    """Mean ratio after the binary-search prologue (paper skips 15 steps)."""
    series = ratio_series(logs)[skip:]
    return float(np.mean(series)) if series else 1.0


def main(**kwargs) -> dict[str, EventLog]:
    logs = run(**kwargs)
    series = ratio_series(logs)
    print("Fig. 10 — per-step ratio: time(no FGO) / time(FGO)")
    for i in range(0, len(series), max(1, len(series) // 30)):
        print(f"  step {i:4d}  ratio {series[i]:.4f}")
    adv = steady_state_advantage(logs)
    print(f"\nsteady-state advantage (mean ratio after search prologue): {adv:.4f}")
    return logs


if __name__ == "__main__":
    main()
