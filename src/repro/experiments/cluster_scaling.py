"""Extension experiment — distributed-memory strong scaling (paper §II).

Not a figure from the paper: the paper forecasts that the single-node
method "can be extended to a distributed memory cluster using techniques
such as those in [13, 9]"; this harness builds that extension (SFC
partition + locally essential trees + a cluster timing model) and measures
strong scaling of one heterogeneous node design across 1..16 nodes.

Expected shape: near-linear speedup while per-rank work dominates, with
efficiency decaying as the LET exchange's share grows (surface-to-volume:
fewer bodies per rank => relatively more halo).
"""

from __future__ import annotations

from repro.cluster.model import ClusterSpec, DistributedExecutor
from repro.distributions.generators import plummer
from repro.experiments.common import default_kernel
from repro.machine.spec import system_a
from repro.tree.lists import build_interaction_lists
from repro.tree.octree import build_adaptive
from repro.util.records import EventLog

__all__ = ["run", "main"]


def run(
    *,
    n: int = 50000,
    S: int = 128,
    node_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    order: int = 4,
    seed: int = 0,
    overlap: float = 0.7,
) -> EventLog:
    ps = plummer(n, seed=seed)
    kernel = default_kernel()
    tree = build_adaptive(ps.positions, S)
    lists = build_interaction_lists(tree, folded=True)
    node = system_a().with_resources(n_cores=10, n_gpus=4)
    base = None
    log = EventLog()
    for p in node_counts:
        cluster = ClusterSpec(node=node, n_nodes=p, overlap=overlap)
        ex = DistributedExecutor(cluster, order=order, kernel=kernel)
        t = ex.time_step(tree, lists)
        if base is None:
            base = t.step_time
        log.add(
            nodes=p,
            step_time=t.step_time,
            speedup=base / t.step_time,
            efficiency=base / t.step_time / p,
            comm_fraction=t.comm_fraction,
            partition_imbalance=t.partition_imbalance,
            comm_mbytes=t.total_comm_bytes / 1e6,
        )
    return log


def main(**kwargs) -> EventLog:
    log = run(**kwargs)
    print("Extension — distributed strong scaling (SFC partition + LET exchange)")
    print(
        log.to_table(
            ["nodes", "step_time", "speedup", "efficiency", "comm_fraction", "comm_mbytes"]
        )
    )
    return log


if __name__ == "__main__":
    main()
