"""Table I — GPU scaling for a fixed workload.

"The data collected in this table was for a fixed workload of 10 million
bodies arranged in a Plummer distribution.  The S chosen was the S which
minimized the total runtime for the system when utilizing 10 CPU cores
and 1 GPU.  The problem was carried out with this same S value while
varying the number of GPUs utilized."

Speedup is the 1-GPU near-field kernel time divided by the k-GPU time
(max over kernels, §VII-A), using the paper's interaction-count
partitioner.
"""

from __future__ import annotations

from repro.distributions.generators import plummer
from repro.experiments.common import default_kernel, geometric_s_values, hetero_executor, optimal_s
from repro.gpu.model import GPUKernelModel
from repro.gpu.partition import near_field_work_items, partition_targets
from repro.machine.spec import system_a
from repro.tree.lists import build_interaction_lists
from repro.tree.octree import build_adaptive
from repro.util.records import EventLog

__all__ = ["run", "main"]


def run(
    *,
    n: int = 50000,
    gpu_counts: tuple[int, ...] = (1, 2, 3, 4),
    order: int = 4,
    seed: int = 0,
    S: int | None = None,
) -> EventLog:
    ps = plummer(n, seed=seed)
    kernel = default_kernel()
    if S is None:
        ex1 = hetero_executor(n_cores=10, n_gpus=1, order=order, kernel=kernel)
        S, _ = optimal_s(ps.positions, ex1, geometric_s_values(32, 2048, 12))
    tree = build_adaptive(ps.positions, S)
    lists = build_interaction_lists(tree, folded=True)
    items = near_field_work_items(lists)
    machine = system_a()
    models = [GPUKernelModel(g) for g in machine.gpus]
    base_time = None
    log = EventLog()
    for k in gpu_counts:
        parts = partition_targets(items, k)
        timings = [m.time_items(p) for m, p in zip(models[:k], parts)]
        t = max(x.kernel_time for x in timings)
        if base_time is None:
            base_time = t
        per_gpu_inter = [x.interactions for x in timings]
        imbalance = (
            max(per_gpu_inter) / (sum(per_gpu_inter) / k) if sum(per_gpu_inter) else 1.0
        )
        log.add(
            n_gpus=k,
            kernel_time=t,
            speedup=base_time / t,
            interaction_imbalance=imbalance,
            S=S,
        )
    return log


def main(**kwargs) -> EventLog:
    log = run(**kwargs)
    print("Table I — GPU scaling for a fixed workload (S fixed at the 10C+1G optimum)")
    print(log.to_table(["n_gpus", "kernel_time", "speedup", "interaction_imbalance"]))
    return log


if __name__ == "__main__":
    main()
