"""Fig. 4 — the Uniform Gap: three distinct cost regimes under a uniform
decomposition.

"Since the tree depth is equal everywhere, a uniform 3D spatial
decomposition increases the number of leaves by a factor of 8 whenever
N/S exceeds a critical value.  For this reason small changes in S may
yield large discontinuities in the cost of near-field and far-field
work, corresponding to removing or adding entire levels of the octree."

The harness sweeps a *dense* ladder of S values over a uniform
distribution with the fixed-depth octree of the original FMM; the
resulting times sit on plateaus (one per octree depth) separated by
jumps at the S values where ceil(log8(N/S)) changes.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.generators import uniform_cube
from repro.experiments.common import hetero_executor
from repro.tree.uniform import build_uniform, uniform_depth_for
from repro.util.records import EventLog

__all__ = ["run", "main"]


def run(
    *,
    n: int = 20000,
    s_values: list[int] | None = None,
    n_cores: int = 10,
    n_gpus: int = 4,
    order: int = 4,
    seed: int = 0,
) -> EventLog:
    ps = uniform_cube(n, seed=seed)
    executor = hetero_executor(n_cores=n_cores, n_gpus=n_gpus, order=order)
    if s_values is None:
        s_values = [int(v) for v in np.unique(np.round(np.geomspace(8, 4096, 28)))]
    log = EventLog()
    for S in s_values:
        depth = uniform_depth_for(n, S)
        tree = build_uniform(ps.positions, depth=depth)
        timing = executor.time_step(tree)
        log.add(
            S=S,
            depth=depth,
            cpu_time=timing.cpu_time,
            gpu_time=timing.gpu_time,
            compute_time=timing.compute_time,
            n_leaves=len(tree.leaves()),
        )
    return log


def regimes(log: EventLog) -> dict[int, float]:
    """Mean compute time per octree depth — the plateaus of Fig. 4."""
    out: dict[int, list[float]] = {}
    for rec in log:
        out.setdefault(rec["depth"], []).append(rec["compute_time"])
    return {d: float(np.mean(v)) for d, v in sorted(out.items())}


def main(**kwargs) -> EventLog:
    log = run(**kwargs)
    print("Fig. 4 — uniform decomposition: distinct cost regimes vs S")
    print(log.to_table(["S", "depth", "cpu_time", "gpu_time", "compute_time", "n_leaves"]))
    print("\nregime means (per depth):")
    for depth, mean in regimes(log).items():
        print(f"  depth {depth}: {mean:.6g} s")
    return log


if __name__ == "__main__":
    main()
