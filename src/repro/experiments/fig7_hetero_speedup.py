"""Fig. 7 / §VIII-E — heterogeneous node speedup as a function of S.

"As our baseline we used the time to run our implementation with a single
core. ... Both the expansion and direct work were run on this single
core.  The S chosen for this serial run was the S that minimized the time
for this single core case.  We then plotted speedup relative to this time
for the following cases: 1G+4C, 1G+10C, 2G+4C, 2G+10C, 4G+4C, 4G+10C."

Headline claims checked by the bench harness:

* ≈98x with 10 cores + 4 GPUs (we report our measured peak);
* the *underpowered-CPU* ordering: 10C+2G beats 4C+4G, and 10C+1G lands
  close to 4C+2G (§VIII-E's discussion of converting expansion work into
  asymptotically inferior direct work).
"""

from __future__ import annotations

from repro.distributions.generators import plummer
from repro.experiments.common import (
    default_kernel,
    geometric_s_values,
    hetero_executor,
    optimal_s,
    sweep_s,
)
from repro.machine.spec import single_core
from repro.machine.executor import HeterogeneousExecutor
from repro.util.records import EventLog

__all__ = ["CONFIGS", "run", "best_speedups", "main"]

#: (n_cores, n_gpus) pairs of Fig. 7
CONFIGS = ((4, 1), (10, 1), (4, 2), (10, 2), (4, 4), (10, 4))


def run(
    *,
    n: int = 50000,
    s_values: list[int] | None = None,
    order: int = 8,
    seed: int = 0,
) -> EventLog:
    # order=8 (165 Cartesian coefficients) matches the paper's spherical
    # precision (~(p+1)^2 > 100 retained terms); the per-body P2M/L2P floor
    # it implies is what caps the underpowered-CPU configurations (SVIII-E).
    ps = plummer(n, seed=seed)
    kernel = default_kernel()
    s_values = s_values or geometric_s_values(16, 2048, 12)

    serial_ex = HeterogeneousExecutor(single_core(), order=order, kernel=kernel)
    serial_S, serial_t = optimal_s(ps.positions, serial_ex, s_values)

    log = EventLog()
    log.add(config="serial(1C)", S=serial_S, time=serial_t.compute_time, speedup=1.0)
    for n_cores, n_gpus in CONFIGS:
        ex = hetero_executor(n_cores=n_cores, n_gpus=n_gpus, order=order, kernel=kernel)
        for S, timing, _tree in sweep_s(ps.positions, ex, s_values):
            log.add(
                config=f"{n_cores}C_{n_gpus}G",
                S=S,
                time=timing.compute_time,
                speedup=serial_t.compute_time / timing.compute_time,
                cpu_time=timing.cpu_time,
                gpu_time=timing.gpu_time,
            )
    return log


def best_speedups(log: EventLog) -> dict[str, float]:
    """Peak speedup per configuration (max over the S sweep)."""
    best: dict[str, float] = {}
    for rec in log:
        cfg = rec["config"]
        if cfg == "serial(1C)":
            continue
        best[cfg] = max(best.get(cfg, 0.0), rec["speedup"])
    return best


def main(**kwargs) -> EventLog:
    log = run(**kwargs)
    print("Fig. 7 — heterogeneous speedup vs S (baseline: optimal serial 1-core run)")
    print(log.to_table(["config", "S", "time", "speedup"]))
    print("\npeak speedups per configuration:")
    for cfg, sp in sorted(best_speedups(log).items(), key=lambda kv: kv[1]):
        print(f"  {cfg:8s} {sp:7.1f}x")
    return log


if __name__ == "__main__":
    main()
