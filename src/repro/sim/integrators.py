"""Time integrators and boundary handling for the dynamic experiments."""

from __future__ import annotations

import numpy as np

from repro.geometry.box import Box

__all__ = ["LeapfrogIntegrator", "reflect_into_box"]


class LeapfrogIntegrator:
    """Kick-drift-kick leapfrog (one force evaluation per step).

    Second-order symplectic; the standard integrator for gravitational
    N-body work.  The caller supplies accelerations; the integrator keeps
    the last acceleration so each step needs only the new one.
    """

    def __init__(self, dt: float) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = float(dt)
        self._acc: np.ndarray | None = None

    def prime(self, acc: np.ndarray) -> None:
        """Provide a(t0) before the first step."""
        self._acc = np.asarray(acc, dtype=float)

    @property
    def primed(self) -> bool:
        return self._acc is not None

    def drift_positions(self, positions: np.ndarray, velocities: np.ndarray) -> np.ndarray:
        """First half: v += a dt/2 (in place); returns x + v dt."""
        if self._acc is None:
            raise RuntimeError("integrator not primed with initial accelerations")
        velocities += 0.5 * self.dt * self._acc
        return positions + self.dt * velocities

    def finish_step(self, velocities: np.ndarray, new_acc: np.ndarray) -> None:
        """Second half: v += a_new dt/2; stores a_new for the next step."""
        new_acc = np.asarray(new_acc, dtype=float)
        velocities += 0.5 * self.dt * new_acc
        self._acc = new_acc


def reflect_into_box(positions: np.ndarray, velocities: np.ndarray, box: Box) -> int:
    """Elastically reflect bodies at the domain walls, in place.

    The paper's dynamic workload keeps the simulation space fixed and
    leaves the compact cluster room to expand and fall back (§IX-A); a few
    high-velocity outliers would still escape any finite domain, so we
    bounce them (documented substitution).  Returns the number of bodies
    touched.
    """
    lo = box.low
    hi = box.high
    touched = np.zeros(positions.shape[0], dtype=bool)
    for axis in range(3):
        for _ in range(4):  # a very fast body may need several folds
            below = positions[:, axis] < lo[axis]
            above = positions[:, axis] > hi[axis]
            if not (below.any() or above.any()):
                break
            positions[below, axis] = 2 * lo[axis] - positions[below, axis]
            positions[above, axis] = 2 * hi[axis] - positions[above, axis]
            velocities[below, axis] *= -1.0
            velocities[above, axis] *= -1.0
            touched |= below | above
    # numerical safety: clamp anything still outside
    np.clip(positions, lo, hi, out=positions)
    return int(touched.sum())
