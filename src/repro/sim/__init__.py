"""Time-dependent N-body simulation driver with dynamic load balancing."""

from repro.sim.integrators import LeapfrogIntegrator, reflect_into_box
from repro.sim.driver import Simulation, SimulationConfig, StepRecord
from repro.sim.observables import (
    center_of_mass,
    kinetic_energy,
    lagrangian_radii,
    potential_energy,
    total_energy,
    virial_ratio,
)

__all__ = [
    "LeapfrogIntegrator",
    "reflect_into_box",
    "Simulation",
    "SimulationConfig",
    "StepRecord",
    "center_of_mass",
    "kinetic_energy",
    "lagrangian_radii",
    "potential_energy",
    "total_energy",
    "virial_ratio",
]
