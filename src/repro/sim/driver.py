"""Time-stepped simulation driver (§IX).

Each step mirrors the paper's §III-D timeline:

1. build/maintain the adaptive tree for the current body positions;
2. "solve" the FMM — numerically (real forces via :class:`FMMSolver` or a
   direct sum) while the heterogeneous executor models the step's CPU/GPU
   times on the machine model;
3. advance bodies (leapfrog) inside the fixed simulation domain;
4. hand the step's timing to the load balancer, which may adjust S
   (rebuild), Enforce_S, or run FineGrainedOptimize — all of whose costs
   are charged as load-balancing time.

The per-step records feed Figs. 8–9 and Table II directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.balance.config import BalancerConfig
from repro.balance.controller import DynamicLoadBalancer
from repro.costmodel.predictor import predict_times
from repro.distributions.generators import ParticleSet
from repro.fmm.evaluator import FMMSolver
from repro.geometry.box import Box, bounding_box
from repro.kernels.base import Kernel
from repro.kernels.direct import direct_evaluate
from repro.machine.executor import HeterogeneousExecutor
from repro.machine.spec import MachineSpec
from repro.obs import NULL_TELEMETRY, REAL_PID, Telemetry
from repro.obs.critpath import analyze as critpath_analyze
from repro.obs.critpath import critical_path_timeline
from repro.resilience.checkpoint import (
    CheckpointError,
    config_fingerprint,
    read_checkpoint,
    restore_balancer,
    tree_from_state,
    write_checkpoint,
)
from repro.resilience.guardrails import GuardrailConfig, check_finite
from repro.runtime.engine import EngineConfig, ExecutionEngine
from repro.sim.integrators import LeapfrogIntegrator, reflect_into_box
from repro.tree.cache import ListCache
from repro.tree.octree import AdaptiveOctree
from repro.util.records import EventLog
from repro.util.timing import TimerRegistry

__all__ = ["Simulation", "SimulationConfig", "StepRecord"]


@dataclass(frozen=True)
class SimulationConfig:
    """Driver configuration."""

    dt: float = 1e-3
    order: int = 3
    folded: bool = True
    #: "fmm" computes forces through the FMM; "direct" uses exact summation
    #: (identical balancer behaviour, cheaper wall-clock for large sweeps)
    forces: str = "fmm"
    #: balancer strategy: "static" (1), "enforce" (2), "full" (3)
    strategy: str = "full"
    balancer: BalancerConfig = field(default_factory=BalancerConfig)
    initial_S: int | None = None
    seed: int = 0
    #: execution-engine worker threads for the numeric FMM solves:
    #: ``None`` = one per CPU (engine default), ``1`` = the exact serial
    #: path reusing today's monolithic sweeps
    n_workers: int | None = None
    #: let near-field tasks overlap the far-field sweep (the paper's
    #: ``max(T_CPU, T_GPU)`` semantics on real threads)
    overlap: bool = True
    #: Morton-range shard worker *processes* for the numeric FMM solves
    #: (``repro.runtime.shards.ProcessEngine``): ``None``/``1`` = off,
    #: ``>1`` = shard the solve across that many spawned workers over
    #: shared memory.  Mutually exclusive with ``n_workers > 1``.
    n_shards: int | None = None
    #: abort any single FMM solve that runs longer than this many wall
    #: seconds (``None`` = no deadline).  Enforced by the execution
    #: engine's graph deadline (a serial inline engine is created even at
    #: ``n_workers=1`` so the checks run); the expiry surfaces as
    #: :class:`repro.runtime.engine.GraphDeadlineError` instead of
    #: degrading to a serial re-run — this is the per-request budget the
    #: serve subsystem wires down (DESIGN.md §15).
    deadline_s: float | None = None
    #: opt-in NaN/Inf health checks + quarantine (DESIGN.md §11)
    guardrail: GuardrailConfig = field(default_factory=GuardrailConfig)
    #: write a checkpoint every K steps (None = disabled; must be > 0)
    checkpoint_every: int | None = None
    #: checkpoint stem; files land at ``{stem}.npz`` + ``{stem}.json``
    checkpoint_path: str = "checkpoint"
    #: append a flight-recorder RunRecord here on close (None = disabled;
    #: "auto" = the repo-root ``RUNS.jsonl`` / ``$REPRO_LEDGER``)
    ledger_path: str | None = None

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError(
                f"dt must be a positive time step, got {self.dt}"
            )
        if self.order < 1:
            raise ValueError(
                f"order must be a positive expansion order, got {self.order}"
            )
        if self.forces not in ("fmm", "direct"):
            raise ValueError(f"forces must be 'fmm' or 'direct', got {self.forces!r}")
        if self.strategy not in ("static", "enforce", "full"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.n_workers is not None and self.n_workers < 1:
            raise ValueError(
                f"n_workers must be >= 1 (use 1 for the exact serial path), "
                f"got {self.n_workers}"
            )
        if self.n_shards is not None and self.n_shards < 1:
            raise ValueError(
                f"n_shards must be >= 1 (use 1 or None for single-process), "
                f"got {self.n_shards}"
            )
        if (self.n_shards or 1) > 1 and (self.n_workers or 1) > 1:
            raise ValueError(
                "n_shards and n_workers are mutually exclusive parallel "
                "backends; set one of them to 1 (or None)"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be a positive wall-clock budget in "
                f"seconds (or None to disable), got {self.deadline_s}"
            )
        if self.deadline_s is not None and (self.n_shards or 1) > 1:
            raise ValueError(
                "deadline_s requires the thread engine; the multi-process "
                "shard backend has no cooperative deadline — set n_shards "
                "to 1 (or None)"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1 step (or None to disable), "
                f"got {self.checkpoint_every}"
            )


@dataclass
class StepRecord:
    """Convenience view of one step's log entry."""

    step: int
    compute_time: float
    lb_time: float
    total_time: float
    S: int
    state: str
    cpu_time: float
    gpu_time: float


class Simulation:
    """Drives a particle system through time with dynamic load balancing."""

    def __init__(
        self,
        particles: ParticleSet,
        kernel: Kernel,
        machine: MachineSpec,
        *,
        config: SimulationConfig | None = None,
        domain: Box | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.particles = particles
        self.kernel = kernel
        self.machine = machine
        self.config = config or SimulationConfig()
        if domain is None:
            domain = _default_domain(particles)
        self.domain = domain
        if not bool(domain.contains(particles.positions).all()):
            raise ValueError("initial positions must lie inside the domain")

        #: one bundle threads through executor, balancer, and cache
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # one cache shared by the executor, solver, and the step loop: a
        # frozen-shape step (refit only) reuses its lists everywhere
        self.list_cache = ListCache()
        if self.telemetry.enabled:
            self.list_cache.bind_metrics(self.telemetry.metrics)
            self.list_cache.bind_tracer(self.telemetry.tracer)
        self.executor = HeterogeneousExecutor(
            machine,
            order=self.config.order,
            kernel=kernel,
            folded=self.config.folded,
            seed=self.config.seed,
            list_cache=self.list_cache,
            telemetry=self.telemetry,
        )
        self.balancer = DynamicLoadBalancer(
            self.executor,
            config=self.config.balancer,
            initial_S=self.config.initial_S,
            mode=self.config.strategy,
        )
        #: real thread-pool engine or multi-process shard engine for the
        #: numeric solves (None when the config resolves to 1 worker or
        #: forces are direct-summed)
        self.engine = None
        if self.config.forces == "fmm":
            if (self.config.n_shards or 1) > 1:
                from repro.runtime.shards import ProcessEngine

                self.engine = ProcessEngine(
                    n_shards=self.config.n_shards, telemetry=self.telemetry
                )
            else:
                engine_config = EngineConfig(
                    n_workers=self.config.n_workers,
                    overlap=self.config.overlap,
                    deadline_s=self.config.deadline_s,
                    deadline_fatal=self.config.deadline_s is not None,
                )
                # a deadline needs the engine even at 1 worker: the serial
                # inline path checks the budget between tasks
                if engine_config.parallel or engine_config.deadline_s is not None:
                    self.engine = ExecutionEngine(engine_config)
        self.solver = (
            FMMSolver(
                kernel,
                order=self.config.order,
                folded=self.config.folded,
                list_cache=self.list_cache,
                telemetry=self.telemetry,
                engine=self.engine,
            )
            if self.config.forces == "fmm"
            else None
        )
        self.integrator = LeapfrogIntegrator(self.config.dt)
        self.tree: AdaptiveOctree | None = None
        self.log = EventLog()
        self.step_index = 0
        self._needs_rebuild = True
        self._closed = False
        #: critical-path report of the most recent engine run (telemetry on)
        self.last_critpath = None
        #: :class:`repro.runtime.shards.ShardRunResult` of the most recent
        #: sharded solve (multi-process runs only)
        self.last_shard_result = None
        self._ledger_written = False
        #: run-level per-op totals (modeled CPU times), fed to the ledger
        self.op_timers = TimerRegistry()
        #: numeric-quarantine trips (also exported as a metric when
        #: telemetry is enabled)
        self.quarantines = 0

    def close(self) -> None:
        """Shut down the execution engine's thread pool (if any).

        Idempotent and exception-safe: safe to call from ``finally``
        blocks and ``__exit__`` after a mid-step failure.  The simulation
        stays usable — the engine lazily recreates its pool if stepped
        again.  When the config names a ledger, the run's flight-recorder
        record is appended here (once, even across repeated closes).
        """
        self._closed = True
        if self.engine is not None:
            try:
                self.engine.close()
            except Exception:
                pass  # a failed shutdown must not mask the original error
        if self.config.ledger_path is not None and not self._ledger_written:
            self._ledger_written = True
            try:
                self.write_ledger_record()
            except Exception:
                pass  # the recorder must never take the simulation down

    def write_ledger_record(self, path: str | None = None):
        """Append this run's :class:`~repro.obs.ledger.RunRecord`.

        Captures the whole feedback loop in one line: per-op observed
        coefficients, balancer decision summary, drift residuals, engine
        utilization + critical path, and Table-II style aggregates.
        """
        from repro.obs.ledger import RunLedger, RunRecord

        target = path if path is not None else self.config.ledger_path
        if target in (None, "auto"):
            target = None  # RunLedger falls back to the default location
        tel = self.telemetry
        if self.last_critpath is None and self.solver is not None:
            # telemetry-off runs never consumed the engine result: do it now
            res = self.solver.last_engine_result
            if res is not None:
                self.last_critpath = critpath_analyze(res)
        extra = {
            "n_bodies": self.particles.n,
            "n_steps": len(self.log),
            "forces": self.config.forces,
            "strategy": self.config.strategy,
            "n_workers": self.config.n_workers,
            "n_shards": self.config.n_shards,
        }
        eng = self.engine
        if eng is not None and getattr(eng, "is_process", False):
            last = self.last_shard_result
            # enough to attribute shard idle time from the ledger alone:
            # idle_seconds / (runs * n_shards) is the mean per-shard wait
            extra["shards"] = {
                "runs": eng.total_runs,
                "halo_bytes": eng.total_halo_bytes,
                "halo_seconds": round(eng.total_halo_seconds, 6),
                "idle_seconds": round(eng.total_idle_seconds, 6),
                "imbalance": round(last.imbalance, 4) if last else None,
                "partition_imbalance": (
                    round(last.partition_imbalance, 4) if last else None
                ),
                # supervision history: how much this run leaned on recovery
                "respawns": eng.total_respawns,
                "partial_redos": eng.total_partial_redos,
                "serial_fallbacks": eng.total_serial_fallbacks,
            }
        record = RunRecord(
            bench="simulation",
            kind="run",
            config_hash=config_fingerprint(
                self.config, self.kernel, self.machine, self.particles.n, self.domain
            ),
            metrics={
                **self.summary(),
                "quarantines": self.quarantines,
            },
            timers={
                op: {"seconds": t.total_time, "applications": t.count}
                for op, t in self.op_timers.timers.items()
            },
            balancer={
                **self.balancer.decision_summary(),
                "coefficients": self.balancer.coeffs.as_dict(),
            },
            engine=(
                self.last_critpath.summary_for_ledger()
                if self.last_critpath is not None
                else {}
            ),
            drift=tel.drift.summary() if tel.enabled else {},
            extra=extra,
        )
        return RunLedger(target).append(record)

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- physics
    def _accelerations(self, tree: AdaptiveOctree, lists) -> np.ndarray:
        q = self.particles.strengths
        if self.solver is not None:
            res = self.solver.solve(tree, q, gradient=True, potential=False, lists=lists)
            acc = res.gradient
            if self.config.guardrail.due(self.step_index) and not check_finite(acc):
                acc = self._quarantine(acc, q)
            return acc
        return direct_evaluate(
            self.kernel, self.particles.positions, self.particles.positions, q,
            gradient=True, exclude_self=True,
        )

    def _quarantine(self, acc: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Numeric quarantine (DESIGN.md §11): repair non-finite rows.

        The FMM produced NaN/Inf accelerations for some bodies (poisoned
        coefficients, corrupted surgery state, ...).  Recovery ladder:

        1. recompute the affected rows through the direct scalar oracle
           (all sources, minus the self term) so *this* step finishes with
           correct forces;
        2. schedule a from-scratch tree rebuild for the next step (the
           current shape is no longer trusted);
        3. reset the balancer to Search — its observed best times came
           from a poisoned pipeline.
        """
        bad = np.flatnonzero(~np.isfinite(acc).all(axis=1))
        self.quarantines += 1
        pts = self.particles.positions
        repaired = direct_evaluate(
            self.kernel, pts[bad], pts, q, gradient=True, exclude_self=False,
        )
        repaired -= self.kernel.self_interaction(pts[bad], q[bad], gradient=True)
        acc = acc.copy()
        acc[bad] = repaired
        self._needs_rebuild = True
        self.balancer.reset_to_search(reason="numeric_quarantine")
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "numeric_quarantine_total",
                "steps quarantined by the NaN/Inf acceleration guardrail",
            ).inc()
            self.telemetry.tracer.instant(
                "numeric-quarantine", bodies=int(bad.size), step=self.step_index
            )
        return acc

    # -------------------------------------------------------------- stepping
    def _ensure_tree(self) -> float:
        """(Re)build or refit the tree; returns the charged maintenance time."""
        lb = 0.0
        if self.tree is None or self._needs_rebuild:
            self.tree = AdaptiveOctree(
                self.particles.positions, self.balancer.S, root_box=self.domain
            )
            self._needs_rebuild = False
        else:
            self.tree.points = self.particles.positions
            self.tree.refit()
        return lb

    def run(self, n_steps: int) -> EventLog:
        """Advance ``n_steps`` time steps; returns the cumulative log."""
        for _ in range(n_steps):
            self.step()
        return self.log

    def step(self) -> StepRecord:
        cfg = self.config
        tracer = self.telemetry.tracer
        with tracer.span("step", step=self.step_index, n=self.particles.n):
            with tracer.span("tree-build", S=self.balancer.S):
                lb_time = self._ensure_tree()
                tree = self.tree
                lists = self.list_cache.get(tree, folded=cfg.folded)

            # what the cost model expects this step to cost — recorded
            # *before* the executor observes it, so drift is honest
            predicted = None
            if self.telemetry.enabled and self.balancer.coeffs.ready:
                predicted = predict_times(lists.op_counts(), self.balancer.coeffs)

            timing = self.executor.time_step(tree, lists)
            for op, t in timing.cpu_registry.timers.items():
                self.op_timers.timer(op).add(t.total_time, t.count)

            with tracer.span("physics"):
                # physics: one leapfrog step with forces from the current tree
                acc = None
                if not self.integrator.primed:
                    acc = self._accelerations(tree, lists)
                    self.integrator.prime(acc)
                new_pos = self.integrator.drift_positions(
                    self.particles.positions, self.particles.velocities
                )
                self.particles.positions[...] = new_pos
                reflect_into_box(
                    self.particles.positions, self.particles.velocities, self.domain
                )
                # new accelerations on the moved bodies (same tree topology;
                # ranges refit)
                tree.points = self.particles.positions
                tree.refit()
                # refit kept the shape, so this lookup is a cache hit, not a
                # rebuild
                lists_after = (
                    self.list_cache.get(tree, folded=cfg.folded) if self.solver else None
                )
                acc_new = self._accelerations(tree, lists_after)
                self.integrator.finish_step(self.particles.velocities, acc_new)

            shard_res = None
            if self.solver is not None:
                shard_res = self.solver.last_shard_result
                self.solver.last_shard_result = None
            if shard_res is not None:
                self.last_shard_result = shard_res
                # feed the *observed* per-shard wall-clock back into the
                # three-state controller: mean busy vs. makespan plays the
                # role of the CPU/GPU pair, so the controller's gap metric
                # is exactly the shard imbalance and a drifting partition
                # triggers repartitioning the same way device drift does
                timing = replace(
                    timing,
                    cpu_time=shard_res.mean_shard_busy,
                    gpu_time=shard_res.max_shard_wall,
                )
                # the modeled-machine prediction is incommensurable with
                # real shard seconds; recording it would poison the
                # cost-model drift series with ~100% "residuals"
                predicted = None
                if self.telemetry.enabled:
                    self._record_shard_telemetry(shard_res)

            with tracer.span("balancer", state=self.balancer.state.value):
                outcome = self.balancer.end_of_step(tree, timing)
            lb_time += outcome.lb_time
            if outcome.rebuild_S is not None:
                self._needs_rebuild = True

            if self.telemetry.enabled:
                self._record_step_telemetry(predicted, timing)

        rec = StepRecord(
            step=self.step_index,
            compute_time=timing.compute_time,
            lb_time=lb_time,
            total_time=timing.compute_time + lb_time,
            S=self.balancer.S,
            state=outcome.state.value,
            cpu_time=timing.cpu_time,
            gpu_time=timing.gpu_time,
        )
        self.log.add(
            step=rec.step,
            compute_time=rec.compute_time,
            lb_time=rec.lb_time,
            total_time=rec.total_time,
            S=rec.S,
            state=rec.state,
            cpu_time=rec.cpu_time,
            gpu_time=rec.gpu_time,
            actions=";".join(outcome.actions),
            gpu_efficiency=timing.gpu_efficiency,
        )
        self.step_index += 1
        every = cfg.checkpoint_every
        if every is not None and self.step_index % every == 0:
            self.save_checkpoint(cfg.checkpoint_path)
        return rec

    # ---------------------------------------------------------- checkpointing
    def save_checkpoint(self, path: str) -> str:
        """Write ``{path}.npz`` + ``{path}.json`` capturing full world state.

        Enough for a bitwise-identical resume: particle arrays, the
        leapfrog's stored acceleration, the exact tree shape (surgery
        history is path-dependent), balancer state + observed
        coefficients, the executor's timing-noise RNG state, and a config
        fingerprint (see :mod:`repro.resilience.checkpoint`).
        """
        return write_checkpoint(self, path)

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        kernel: Kernel,
        machine: MachineSpec,
        *,
        config: SimulationConfig | None = None,
        telemetry: Telemetry | None = None,
        strict: bool = True,
    ) -> "Simulation":
        """Resume a checkpointed run; the continuation is bitwise identical
        to the uninterrupted trajectory.

        ``kernel``/``machine``/``config`` are re-supplied by the caller
        (code does not round-trip through a checkpoint); their fingerprint
        must match the one recorded at save time, else
        :class:`~repro.resilience.checkpoint.CheckpointError` is raised
        (``strict=False`` downgrades the mismatch to a continue-anyway).
        """
        data = read_checkpoint(path)
        man = data.manifest
        particles = ParticleSet(
            positions=data.arrays["positions"],
            velocities=data.arrays["velocities"],
            strengths=data.arrays["strengths"],
        )
        domain = Box(tuple(man["domain"]["center"]), float(man["domain"]["size"]))
        sim = cls(
            particles, kernel, machine,
            config=config, domain=domain, telemetry=telemetry,
        )
        fingerprint = config_fingerprint(
            sim.config, kernel, machine, particles.n, domain
        )
        if man["config_hash"] != fingerprint and strict:
            raise CheckpointError(
                f"checkpoint {path!r} was written under a different "
                "configuration (config/kernel/machine/body-count mismatch); "
                "resume with the original settings, or pass strict=False to "
                "continue anyway (the trajectory will diverge)"
            )
        sim.step_index = int(man["step_index"])
        sim._needs_rebuild = bool(man["needs_rebuild"])
        if "integrator_acc" in data.arrays:
            sim.integrator._acc = np.asarray(
                data.arrays["integrator_acc"], dtype=float
            )
        restore_balancer(sim.balancer, man["balancer"])
        sim.executor._rng.bit_generator.state = man["rng_state"]
        if man.get("tree") is not None:
            sim.tree = tree_from_state(
                sim.particles.positions, data.arrays, man["tree"]
            )
        return sim

    # ------------------------------------------------------------ telemetry
    def _record_step_telemetry(self, predicted, timing) -> None:
        """Feed one step into the drift tracker and headline metrics."""
        tel = self.telemetry
        tel.tracer.counter("S", self.balancer.S)
        tel.tracer.counter(
            "compute-time",
            timing.compute_time,
            cpu=timing.cpu_time,
            gpu=timing.gpu_time,
        )
        tel.metrics.counter("sim_steps_total", "time steps executed").inc()
        sample = tel.drift.observe(
            self.step_index,
            predicted=predicted,
            observed_cpu=timing.cpu_time,
            observed_gpu=timing.gpu_time,
            coeffs=self.balancer.coeffs,
        )
        if sample is not None:
            tel.metrics.histogram(
                "costmodel_abs_residual",
                "per-step |relative error| of the predicted max(T_CPU, T_GPU)",
                buckets=(0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
            ).observe(abs(sample.residual))
            tel.metrics.gauge(
                "costmodel_residual",
                "signed relative error of the last step's prediction",
            ).set(sample.residual)
            tel.metrics.gauge(
                "machine_imbalance_seconds",
                "|T_CPU - T_GPU| of the last step",
            ).set(sample.imbalance)
            tel.tracer.counter("drift-residual", sample.residual)
        self._record_engine_telemetry(timing)

    def _record_engine_telemetry(self, timing) -> None:
        """Export the last engine run: real worker lanes next to the
        simulated scheduler's, and the runtime-model residual (simulated
        makespan vs. measured wall-clock)."""
        tel = self.telemetry
        res = self.solver.last_engine_result if self.solver is not None else None
        if res is None:
            return
        self.solver.last_engine_result = None
        report = critpath_analyze(res)
        self.last_critpath = report
        # overlay the critical chain on the same time window as the real
        # worker lanes (advance_cursor=False shares their batch base)
        rows, names = critical_path_timeline(report)
        tel.tracer.add_worker_lanes(
            rows,
            pid=REAL_PID,
            phase="critical_path",
            lane_names=names,
            advance_cursor=False,
        )
        tel.tracer.add_worker_lanes(
            res.timeline(), pid=REAL_PID, makespan=res.makespan, phase="engine"
        )
        tel.metrics.gauge(
            "engine_max_ready_depth",
            "peak ready-queue depth of the last engine run (exposed parallelism)",
        ).set(res.max_ready_depth)
        tel.metrics.gauge(
            "engine_queue_wait_seconds",
            "summed ready-to-start wait of the last engine run's tasks",
        ).set(res.total_queue_wait)
        rs = tel.drift.observe_runtime(
            self.step_index, simulated=timing.compute_time, measured=res.makespan
        )
        tel.metrics.gauge(
            "runtime_model_residual",
            "signed relative error of the simulated makespan vs the engine's "
            "measured wall-clock, (measured - simulated) / measured",
        ).set(rs.residual)
        tel.metrics.gauge(
            "runtime_engine_utilization",
            "busy-time / (makespan x workers) of the last engine run",
        ).set(res.utilization)
        self.executor.observe_real_registry(res.op_registry())

    def _record_shard_telemetry(self, res) -> None:
        """Export one sharded solve: per-shard Perfetto lanes (stage spans
        stacked per worker process) plus halo-exchange traffic gauges —
        the measured bytes next to the LET model's prediction."""
        tel = self.telemetry
        tel.tracer.add_worker_lanes(
            res.timeline(),
            pid=REAL_PID,
            makespan=res.wall,
            phase="shards",
            lane_names={s: f"shard-{s}" for s in range(res.n_shards)},
        )
        tel.metrics.gauge(
            "shard_halo_bytes",
            "bytes actually gathered across shard boundaries in the last "
            "sharded solve (multipole rows + boundary P2P bodies)",
        ).set(res.halo_bytes)
        tel.metrics.gauge(
            "shard_halo_model_bytes",
            "bytes the LET comm model predicts for the same exchange",
        ).set(res.let_bytes)
        tel.metrics.gauge(
            "shard_halo_seconds",
            "summed time shards spent in halo gathers in the last solve",
        ).set(res.halo_seconds)
        tel.metrics.gauge(
            "shard_imbalance",
            "max/mean shard busy time of the last sharded solve",
        ).set(res.imbalance)

    # ------------------------------------------------------------- summaries
    def summary(self) -> dict[str, float]:
        """Aggregates for Table II."""
        compute = float(np.sum(self.log.column("compute_time", 0.0)))
        lb = float(np.sum(self.log.column("lb_time", 0.0)))
        steps = max(1, len(self.log))
        return {
            "total_compute": compute,
            "total_lb": lb,
            "lb_pct_of_compute": 100.0 * lb / compute if compute else 0.0,
            "mean_total_per_step": (compute + lb) / steps,
            "n_steps": steps,
        }


def _default_domain(particles: ParticleSet) -> Box:
    """A cube 4x the initial bounding cube, centered on the bodies."""
    bb = bounding_box(particles.positions)
    return Box(bb.center, bb.size * 4.0)
