"""Physical observables for the N-body runs.

Used to verify that the dynamic workload of §IX-A behaves as the paper
describes — the compact cluster genuinely expands through the simulation
space (Lagrangian radii growing) and partially returns toward the center
of mass — and for general sanity monitoring (energy drift under leapfrog).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.generators import ParticleSet
from repro.kernels.laplace import GravityKernel

__all__ = [
    "kinetic_energy",
    "potential_energy",
    "total_energy",
    "virial_ratio",
    "lagrangian_radii",
    "center_of_mass",
]


def center_of_mass(ps: ParticleSet) -> np.ndarray:
    m = ps.strengths.reshape(-1)
    return (m[:, None] * ps.positions).sum(axis=0) / m.sum()


def kinetic_energy(ps: ParticleSet) -> float:
    m = ps.strengths.reshape(-1)
    v2 = np.einsum("ij,ij->i", ps.velocities, ps.velocities)
    return 0.5 * float((m * v2).sum())


def potential_energy(ps: ParticleSet, kernel: GravityKernel) -> float:
    """W = (1/2) sum_i m_i phi(x_i) (pairwise, self term excluded)."""
    from repro.kernels.direct import direct_evaluate

    phi = direct_evaluate(
        kernel, ps.positions, ps.positions, ps.strengths, exclude_self=True
    )[:, 0]
    return 0.5 * float((ps.strengths.reshape(-1) * phi).sum())


def total_energy(ps: ParticleSet, kernel: GravityKernel) -> float:
    return kinetic_energy(ps) + potential_energy(ps, kernel)


def virial_ratio(ps: ParticleSet, kernel: GravityKernel) -> float:
    """2K / |W| — 1.0 at virial equilibrium, > 1 for an unbound/hot system."""
    w = potential_energy(ps, kernel)
    if w == 0:
        return float("inf")
    return 2.0 * kinetic_energy(ps) / abs(w)


def lagrangian_radii(
    ps: ParticleSet, fractions: tuple[float, ...] = (0.1, 0.5, 0.9)
) -> dict[float, float]:
    """Radii enclosing the given mass fractions, about the center of mass."""
    m = ps.strengths.reshape(-1)
    com = center_of_mass(ps)
    r = np.linalg.norm(ps.positions - com, axis=1)
    order = np.argsort(r)
    cum = np.cumsum(m[order])
    total = cum[-1]
    out = {}
    for f in fractions:
        if not 0 < f <= 1:
            raise ValueError(f"mass fraction must be in (0, 1], got {f}")
        k = int(np.searchsorted(cum, f * total))
        out[f] = float(r[order[min(k, len(r) - 1)]])
    return out
