"""Deterministic chaos harness: seeded fault injection into engine tasks.

A :class:`FaultPlan` is armed on an :class:`~repro.runtime.engine.
ExecutionEngine` via ``engine.install_fault_plan(plan)``; the engine then
calls ``plan.hook(label, attempt)`` immediately *before* each task body.
Because the hook fires before any task work, an injected raise never
leaves partial state behind, so a retried attempt recomputes exactly what
the fault-free execution would have — the foundation of the
bitwise-identical chaos property tests.

Three fault kinds:

* ``"raise"`` — throw :class:`InjectedFault`; the engine's retry policy
  (for retryable tasks) or graceful serial degradation (for merges)
  absorbs it;
* ``"delay"`` — sleep ``delay_s`` to perturb thread interleavings, which
  must not perturb results;
* ``"nan"`` — run a caller-supplied ``action`` callable (e.g. poison one
  leaf's multipole coefficients) to exercise the numeric guardrails.

Everything is deterministic given the plan: specs match task labels by
substring, fire on attempts ``< fire_attempts``, and stop after
``max_fires`` total firings.  ``plan.fired`` records every firing for
test assertions; the plan is thread-safe (hooks run on worker threads).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["FaultPlan", "FaultSpec", "InjectedFault"]


class InjectedFault(RuntimeError):
    """Raised by a ``"raise"`` fault spec; always deliberate."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    ``match`` is a substring tested against the task label.  The spec
    fires while the task's attempt index is ``< fire_attempts`` (so the
    default 1 means "fail the first attempt, let the retry succeed") and
    while the spec's total firing count is ``< max_fires``.
    """

    kind: str  # "raise" | "delay" | "nan"
    match: str
    fire_attempts: int = 1
    max_fires: int | None = None
    delay_s: float = 0.001
    action: Callable[[], None] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "delay", "nan"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "nan" and self.action is None:
            raise ValueError("'nan' faults need an action callable")
        if self.fire_attempts < 1:
            raise ValueError("fire_attempts must be >= 1")


@dataclass
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` rules.

    First matching spec wins per hook call.  ``fired`` accumulates
    ``(kind, label, attempt)`` tuples.
    """

    faults: list[FaultSpec] = field(default_factory=list)
    fired: list[tuple[str, str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[int, int] = {}

    def fired_kinds(self) -> set[str]:
        return {kind for kind, _, _ in self.fired}

    def hook(self, label: str, attempt: int) -> None:
        """Engine callback; raises/delays/acts per the matching spec."""
        for i, spec in enumerate(self.faults):
            if spec.match not in label or attempt >= spec.fire_attempts:
                continue
            with self._lock:
                count = self._counts.get(i, 0)
                if spec.max_fires is not None and count >= spec.max_fires:
                    continue
                self._counts[i] = count + 1
                self.fired.append((spec.kind, label, attempt))
            if spec.kind == "raise":
                raise InjectedFault(
                    f"injected fault in task {label!r} (attempt {attempt})"
                )
            if spec.kind == "delay":
                time.sleep(spec.delay_s)
            else:  # "nan"
                spec.action()
            return
