"""Deterministic chaos harness: seeded fault injection into engine tasks.

A :class:`FaultPlan` is armed on an :class:`~repro.runtime.engine.
ExecutionEngine` via ``engine.install_fault_plan(plan)``; the engine then
calls ``plan.hook(label, attempt)`` immediately *before* each task body.
Because the hook fires before any task work, an injected raise never
leaves partial state behind, so a retried attempt recomputes exactly what
the fault-free execution would have — the foundation of the
bitwise-identical chaos property tests.

Thread-level fault kinds (the :class:`~repro.runtime.engine.ExecutionEngine`
matrix):

* ``"raise"`` — throw :class:`InjectedFault`; the engine's retry policy
  (for retryable tasks) or graceful serial degradation (for merges)
  absorbs it;
* ``"delay"`` — sleep ``delay_s`` to perturb thread interleavings, which
  must not perturb results;
* ``"nan"`` — run a caller-supplied ``action`` callable (e.g. poison one
  leaf's multipole coefficients) to exercise the numeric guardrails.

Process-level fault kinds (the :class:`~repro.runtime.shards.ProcessEngine`
matrix — the plan is pickled into each worker with the run command, and
the worker calls ``plan.hook(label, attempt, shard=me, pipe=conn)`` at
named stage barriers):

* ``"kill"`` — SIGKILL the calling worker process (a crash the shard
  supervisor must detect via pipe EOF and repair by respawn);
* ``"stall"`` — sleep ``delay_s`` without heartbeating, simulating a
  wedged worker that only the supervisor's read deadline can surface;
* ``"pipe_drop"`` — close the worker's control pipe, simulating a
  severed transport while the process itself keeps computing.

The optional ``shard`` field targets one worker; thread-engine hooks pass
``shard=None``, so shard-targeted specs never fire there (and
:meth:`ExecutionEngine.install_fault_plan` rejects process kinds
outright — a ``"kill"`` on a thread would take the whole interpreter
down).  Everything is deterministic given the plan: specs match task
labels by substring, fire on attempts ``< fire_attempts``, and stop
after ``max_fires`` total firings.  ``plan.fired`` records every firing
for test assertions; the plan is thread-safe (hooks run on worker
threads) and picklable (firing counts are per-process once shipped to a
shard worker — use ``fire_attempts`` for cross-respawn semantics, since
the run-attempt index survives the respawn while counts do not).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "PROCESS_FAULT_KINDS",
    "THREAD_FAULT_KINDS",
]

#: kinds injected into thread-engine task bodies
THREAD_FAULT_KINDS = ("raise", "delay", "nan")

#: kinds injected into shard worker processes (ProcessEngine chaos seams)
PROCESS_FAULT_KINDS = ("kill", "stall", "pipe_drop")


class InjectedFault(RuntimeError):
    """Raised by a ``"raise"`` fault spec; always deliberate."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    ``match`` is a substring tested against the task label.  The spec
    fires while the task's attempt index is ``< fire_attempts`` (so the
    default 1 means "fail the first attempt, let the retry succeed") and
    while the spec's total firing count is ``< max_fires``.  ``shard``
    restricts a process-level spec to one worker; ``None`` matches any.
    """

    kind: str  # "raise" | "delay" | "nan" | "kill" | "stall" | "pipe_drop"
    match: str
    fire_attempts: int = 1
    max_fires: int | None = None
    delay_s: float = 0.001
    action: Callable[[], None] | None = None
    shard: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in THREAD_FAULT_KINDS + PROCESS_FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "nan" and self.action is None:
            raise ValueError("'nan' faults need an action callable")
        if self.fire_attempts < 1:
            raise ValueError("fire_attempts must be >= 1")


@dataclass
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` rules.

    First matching spec wins per hook call.  ``fired`` accumulates
    ``(kind, label, attempt)`` tuples.
    """

    faults: list[FaultSpec] = field(default_factory=list)
    fired: list[tuple[str, str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[int, int] = {}

    def __getstate__(self) -> dict:
        # the lock cannot cross a process boundary; firing counts travel
        # so max_fires keeps its meaning within the receiving process
        return {
            "faults": self.faults,
            "fired": list(self.fired),
            "counts": dict(self._counts),
        }

    def __setstate__(self, state: dict) -> None:
        self.faults = state["faults"]
        self.fired = state["fired"]
        self._counts = state["counts"]
        self._lock = threading.Lock()

    def fired_kinds(self) -> set[str]:
        return {kind for kind, _, _ in self.fired}

    def hook(
        self,
        label: str,
        attempt: int,
        *,
        shard: int | None = None,
        pipe=None,
    ) -> None:
        """Engine callback; raises/delays/acts/kills per the matching spec.

        Thread engines call ``hook(label, attempt)``; shard workers add
        ``shard`` (their id, so shard-targeted specs discriminate) and
        ``pipe`` (their control connection, the ``"pipe_drop"`` target).
        """
        for i, spec in enumerate(self.faults):
            if spec.match not in label or attempt >= spec.fire_attempts:
                continue
            if spec.shard is not None and spec.shard != shard:
                continue
            with self._lock:
                count = self._counts.get(i, 0)
                if spec.max_fires is not None and count >= spec.max_fires:
                    continue
                self._counts[i] = count + 1
                self.fired.append((spec.kind, label, attempt))
            if spec.kind == "raise":
                raise InjectedFault(
                    f"injected fault in task {label!r} (attempt {attempt})"
                )
            if spec.kind in ("delay", "stall"):
                time.sleep(spec.delay_s)
            elif spec.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif spec.kind == "pipe_drop":
                if pipe is not None:
                    pipe.close()
            else:  # "nan"
                spec.action()
            return
