"""Numeric guardrails: cheap NaN/Inf health checks + quarantine config.

The check exploits IEEE-754 propagation: ``np.sum`` of an array is
non-finite iff the array contains a NaN or Inf, so one reduction (a few
hundred microseconds even at 50k bodies) replaces an elementwise
``np.isfinite(...).all()`` scan.  Guardrails are **opt-in**
(``GuardrailConfig(enabled=True)``) and cost nothing when disabled — the
driver checks one boolean per step (the <2% overhead budget is gated in
``benchmarks/test_bench_resilience.py``).

On a tripped check the driver *quarantines* the step (DESIGN.md §11):
non-finite acceleration rows are recomputed through the direct scalar
oracle, the tree is scheduled for a from-scratch rebuild, and the
balancer is reset to Search — with ``numeric_quarantine_total``
incremented so operators can see it happened.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GuardrailConfig", "check_finite"]


@dataclass(frozen=True)
class GuardrailConfig:
    """Opt-in numeric health checking.

    ``cadence`` = check every Nth step (1 = every step); quarantine
    repair always runs when a check trips.
    """

    enabled: bool = False
    cadence: int = 1

    def __post_init__(self) -> None:
        if self.cadence < 1:
            raise ValueError(
                f"guardrail cadence must be >= 1 step, got {self.cadence}"
            )

    def due(self, step_index: int) -> bool:
        return self.enabled and step_index % self.cadence == 0


def check_finite(arr: np.ndarray | None) -> bool:
    """True iff every element of ``arr`` is finite (None/empty pass).

    One O(n) reduction, no temporary boolean array: ``sum`` is non-finite
    iff any input element is (NaN propagates; +inf/-inf either survive or
    combine to NaN).
    """
    if arr is None or arr.size == 0:
        return True
    return bool(np.isfinite(np.sum(arr)))
