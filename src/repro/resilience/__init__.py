"""Resilience subsystem (DESIGN.md §11).

Three layers over the supervised execution engine
(:mod:`repro.runtime.engine`):

* :mod:`repro.resilience.faults` — a seeded, deterministic chaos harness
  (:class:`FaultPlan`) that injects raises, delays, and NaNs into named
  engine tasks through the engine's test-only ``fault_hook``;
* :mod:`repro.resilience.guardrails` — cheap NaN/Inf health checks on
  coefficient and acceleration arrays plus the driver's quarantine
  configuration;
* :mod:`repro.resilience.checkpoint` — versioned ``.npz`` + json
  simulation checkpoints with a config-compatibility hash, enabling
  bitwise-identical resume of a killed run.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointData,
    CheckpointError,
    config_fingerprint,
    read_checkpoint,
    tree_from_state,
    tree_state_arrays,
    write_checkpoint,
)
from repro.resilience.faults import FaultPlan, FaultSpec, InjectedFault
from repro.resilience.guardrails import GuardrailConfig, check_finite

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointData",
    "CheckpointError",
    "FaultPlan",
    "FaultSpec",
    "GuardrailConfig",
    "InjectedFault",
    "check_finite",
    "config_fingerprint",
    "read_checkpoint",
    "tree_from_state",
    "tree_state_arrays",
    "write_checkpoint",
]
