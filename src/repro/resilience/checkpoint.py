"""Versioned simulation checkpoints (``.npz`` + json sidecar).

A checkpoint stem ``foo`` produces two files:

* ``foo.npz`` — the bulk arrays: positions, velocities, strengths, the
  leapfrog's stored acceleration, and (when the tree shape is live) the
  full octree node table;
* ``foo.json`` — the manifest: format version, step index, balancer
  state + observed §IV-D coefficients, the executor's noise-RNG state,
  and a sha256 *config fingerprint*.

Bitwise-identical resume requires more than positions: the tree shape is
**path-dependent** (Enforce_S / FineGrainedOptimize surgery history), so
rebuilding from points would change FMM traversal and hence floating-point
rounding.  We therefore serialize the complete node table (key spans,
parent/child topology, hidden/leaf flags) and reconstruct the exact tree;
the modeled-timing noise RNG state is saved so balancer decisions replay
exactly; json round-trips Python floats through ``repr`` so every stored
scalar restores bit-for-bit.

The config fingerprint hashes everything that determines the trajectory —
physics config, balancer thresholds, kernel parameters, machine model,
body count, domain — and deliberately *excludes* execution knobs
(``n_workers``, ``overlap``, checkpoint cadence): those may legitimately
differ between the writing and resuming process because the engine is
bitwise-identical at any worker count.  A mismatch raises
:class:`CheckpointError` unless ``strict=False``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.geometry.box import Box
from repro.tree.octree import AdaptiveOctree, OctreeNode

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointData",
    "CheckpointError",
    "balancer_state",
    "config_fingerprint",
    "read_checkpoint",
    "restore_balancer",
    "tree_from_state",
    "tree_state_arrays",
    "write_checkpoint",
]

CHECKPOINT_VERSION = 1

#: config fields that do not affect the trajectory (execution-only knobs)
_EXECUTION_FIELDS = frozenset(
    {
        "n_workers",
        "overlap",
        "checkpoint_every",
        "checkpoint_path",
        "ledger_path",
        "deadline_s",
    }
)


class CheckpointError(RuntimeError):
    """Unreadable, incompatible, or version-mismatched checkpoint."""


@dataclass
class CheckpointData:
    """A loaded checkpoint: json manifest + npz arrays."""

    manifest: dict
    arrays: dict[str, np.ndarray]


# ------------------------------------------------------------- fingerprint


def _canon(obj):
    """Canonical json-able form of config/kernel/machine values."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_canon(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in sorted(obj.items())}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canon(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    # plain objects (kernels): class name + simple public attributes
    attrs = vars(obj) if hasattr(obj, "__dict__") else {}
    return {
        "__class__": type(obj).__name__,
        **{
            k: _canon(v)
            for k, v in sorted(attrs.items())
            if not k.startswith("_")
            and isinstance(v, (bool, int, float, str, tuple, list))
        },
    }


def config_fingerprint(config, kernel, machine, n_bodies: int, domain: Box) -> str:
    """sha256 over everything that determines the trajectory."""
    cfg = {
        f.name: _canon(getattr(config, f.name))
        for f in dataclasses.fields(config)
        if f.name not in _EXECUTION_FIELDS
    }
    doc = {
        "version": CHECKPOINT_VERSION,
        "config": cfg,
        "kernel": _canon(kernel),
        "machine": _canon(machine),
        "n_bodies": int(n_bodies),
        "domain": {
            "center": [float(c) for c in domain.center],
            "size": float(domain.size),
        },
    }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()
    ).hexdigest()


# ------------------------------------------------------------------- tree


def tree_state_arrays(tree: AdaptiveOctree) -> tuple[dict, dict]:
    """Serialize the full node table; returns ``(arrays, manifest)``.

    The shape is path-dependent (surgery history), so every node —
    including hidden (collapsed-away) subtrees kept for reclaim — is
    recorded with its key span, topology, and flags.
    """
    nodes = tree.nodes
    children_flat: list[int] = []
    children_ptr = [0]
    for nd in nodes:
        children_flat.extend(nd.children or [])
        children_ptr.append(len(children_flat))
    arrays = {
        "tree_parent": np.array([nd.parent for nd in nodes], dtype=np.int64),
        "tree_level": np.array([nd.level for nd in nodes], dtype=np.int64),
        "tree_key_lo": np.array([nd.key_lo for nd in nodes], dtype=np.uint64),
        "tree_key_hi": np.array([nd.key_hi for nd in nodes], dtype=np.uint64),
        "tree_lo": np.array([nd.lo for nd in nodes], dtype=np.int64),
        "tree_hi": np.array([nd.hi for nd in nodes], dtype=np.int64),
        "tree_is_leaf": np.array([nd.is_leaf for nd in nodes], dtype=bool),
        "tree_hidden": np.array([nd.hidden for nd in nodes], dtype=bool),
        "tree_has_children": np.array(
            [nd.children is not None for nd in nodes], dtype=bool
        ),
        "tree_centers": np.array([nd.center for nd in nodes], dtype=float),
        "tree_sizes": np.array([nd.size for nd in nodes], dtype=float),
        "tree_children_flat": np.array(children_flat, dtype=np.int64),
        "tree_children_ptr": np.array(children_ptr, dtype=np.int64),
    }
    manifest = {
        "S": int(tree.S),
        "max_level": int(tree.max_level),
        "root_center": [float(c) for c in tree.root_box.center],
        "root_size": float(tree.root_box.size),
    }
    return arrays, manifest


def tree_from_state(
    points: np.ndarray, arrays: dict, manifest: dict
) -> AdaptiveOctree:
    """Reconstruct the exact octree serialized by :func:`tree_state_arrays`."""
    tree = AdaptiveOctree.__new__(AdaptiveOctree)
    tree.points = np.atleast_2d(np.asarray(points, dtype=float))
    tree.S = int(manifest["S"])
    tree.max_level = int(manifest["max_level"])
    tree.generation = 0
    tree.structure_generation = 0
    tree.root_box = Box(
        tuple(manifest["root_center"]), float(manifest["root_size"])
    )
    ptr = arrays["tree_children_ptr"]
    flat = arrays["tree_children_flat"]
    has_children = arrays["tree_has_children"]
    nodes: list[OctreeNode] = []
    for i in range(arrays["tree_parent"].shape[0]):
        children = None
        if has_children[i]:
            children = [int(c) for c in flat[ptr[i] : ptr[i + 1]]]
        nodes.append(
            OctreeNode(
                id=i,
                level=int(arrays["tree_level"][i]),
                center=np.array(arrays["tree_centers"][i], dtype=float),
                size=float(arrays["tree_sizes"][i]),
                parent=int(arrays["tree_parent"][i]),
                key_lo=np.uint64(arrays["tree_key_lo"][i]),
                key_hi=np.uint64(arrays["tree_key_hi"][i]),
                lo=int(arrays["tree_lo"][i]),
                hi=int(arrays["tree_hi"][i]),
                children=children,
                is_leaf=bool(arrays["tree_is_leaf"][i]),
                hidden=bool(arrays["tree_hidden"][i]),
            )
        )
    tree.nodes = nodes
    # recompute the Morton sort (deterministic for identical points/box);
    # node lo/hi ranges were restored verbatim above
    tree._sort_bodies()
    return tree


# ---------------------------------------------------------------- balancer


def balancer_state(balancer) -> dict:
    """Capture the controller's full decision state (json-able)."""
    c = balancer.coeffs
    return {
        "state": balancer.state.value,
        "S": int(balancer.S),
        "lo": float(balancer._lo),
        "hi": float(balancer._hi),
        "search_steps": int(balancer._search_steps),
        "frozen": bool(balancer._frozen),
        "inc_entry_dominant": balancer._inc_entry_dominant,
        "best_time": balancer.best_time,
        "expect_new_best": bool(balancer._expect_new_best),
        "s_history": [
            [st.value, int(s)] for st, s in getattr(balancer, "_s_history", [])
        ],
        "coeffs": {
            "smoothing": float(c.smoothing),
            "cpu": {k: float(v) for k, v in c.cpu.items()},
            "gpu_p2p": float(c.gpu_p2p),
            "steps_observed": int(c.steps_observed),
        },
    }


def restore_balancer(balancer, state: dict) -> None:
    """Restore what :func:`balancer_state` captured."""
    from repro.balance.states import BalancerState

    balancer.state = BalancerState(state["state"])
    balancer.S = int(state["S"])
    balancer._lo = float(state["lo"])
    balancer._hi = float(state["hi"])
    balancer._search_steps = int(state["search_steps"])
    balancer._frozen = bool(state["frozen"])
    balancer._inc_entry_dominant = state["inc_entry_dominant"]
    balancer.best_time = state["best_time"]
    balancer._expect_new_best = bool(state["expect_new_best"])
    if hasattr(balancer, "_s_history"):
        balancer._s_history.clear()
        balancer._s_history.extend(
            (BalancerState(st), int(s)) for st, s in state.get("s_history", [])
        )
    c = balancer.coeffs
    c.smoothing = float(state["coeffs"]["smoothing"])
    c.cpu = {k: float(v) for k, v in state["coeffs"]["cpu"].items()}
    c.gpu_p2p = float(state["coeffs"]["gpu_p2p"])
    c.steps_observed = int(state["coeffs"]["steps_observed"])


# -------------------------------------------------------------------- io


def write_checkpoint(sim, path: str) -> str:
    """Write ``{path}.npz`` + ``{path}.json`` from a live ``Simulation``.

    Duck-typed on the driver to avoid an import cycle; returns ``path``.
    """
    arrays: dict[str, np.ndarray] = {
        "positions": sim.particles.positions,
        "velocities": sim.particles.velocities,
        "strengths": sim.particles.strengths,
    }
    if sim.integrator._acc is not None:
        arrays["integrator_acc"] = sim.integrator._acc
    manifest = {
        "version": CHECKPOINT_VERSION,
        "step_index": int(sim.step_index),
        "needs_rebuild": bool(sim._needs_rebuild),
        "config_hash": config_fingerprint(
            sim.config, sim.kernel, sim.machine, sim.particles.n, sim.domain
        ),
        "rng_state": sim.executor._rng.bit_generator.state,
        "balancer": balancer_state(sim.balancer),
        "domain": {
            "center": [float(c) for c in sim.domain.center],
            "size": float(sim.domain.size),
        },
        "tree": None,
    }
    if sim.tree is not None and not sim._needs_rebuild:
        tree_arrays, tree_manifest = tree_state_arrays(sim.tree)
        arrays.update(tree_arrays)
        manifest["tree"] = tree_manifest
    np.savez(f"{path}.npz", **arrays)
    with open(f"{path}.json", "w") as fh:
        json.dump(manifest, fh, indent=2)
    return path


def read_checkpoint(path: str) -> CheckpointData:
    """Load and version-check a checkpoint written by :func:`write_checkpoint`."""
    try:
        with open(f"{path}.json") as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        raise CheckpointError(
            f"cannot read checkpoint manifest {path}.json: {e}"
        ) from e
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    try:
        with np.load(f"{path}.npz") as npz:
            arrays = {k: npz[k] for k in npz.files}
    except OSError as e:
        raise CheckpointError(
            f"cannot read checkpoint arrays {path}.npz: {e}"
        ) from e
    return CheckpointData(manifest=manifest, arrays=arrays)
