"""Initial-condition generators.

The paper's evaluation uses two distributions:

* a **Plummer sphere** (highly non-uniform; used for CPU scaling, GPU
  scaling and the heterogeneous speedup experiments), including the
  dynamic-workload variant that starts *compact*, "initially contained
  within 1/64th of the simulation space" (§IX-A);
* a **uniform cube** (used for the Uniform Gap / FineGrainedOptimize
  experiment of §IX-B).

We add two extra non-uniform generators (Gaussian blobs, exponential disk)
for wider test coverage of the adaptive machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import default_rng

__all__ = [
    "ParticleSet",
    "plummer",
    "compact_plummer",
    "uniform_cube",
    "gaussian_blobs",
    "exponential_disk",
]


@dataclass
class ParticleSet:
    """Positions, velocities, and strengths (masses/charges) of N bodies.

    ``strengths`` has shape (n,) for scalar kernels (gravity) and
    (n, 3) for vector kernels (regularized Stokeslets force densities).
    """

    positions: np.ndarray
    velocities: np.ndarray
    strengths: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=float)
        self.velocities = np.ascontiguousarray(self.velocities, dtype=float)
        self.strengths = np.ascontiguousarray(self.strengths, dtype=float)
        n = self.positions.shape[0]
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(f"positions must be (n, 3), got {self.positions.shape}")
        if self.velocities.shape != self.positions.shape:
            raise ValueError("velocities must match positions shape")
        if self.strengths.shape[0] != n:
            raise ValueError("strengths must have one row per body")

    @property
    def n(self) -> int:
        return self.positions.shape[0]

    def copy(self) -> "ParticleSet":
        return ParticleSet(
            self.positions.copy(),
            self.velocities.copy(),
            self.strengths.copy(),
            dict(self.meta),
        )


def plummer(
    n: int,
    *,
    total_mass: float | None = None,
    scale_radius: float = 1.0,
    G: float = 1.0,
    seed=0,
    max_radius: float = 20.0,
    virialize: bool = True,
) -> ParticleSet:
    """Sample ``n`` bodies from a Plummer sphere.

    Positions follow the Plummer density; velocities (when ``virialize``)
    are drawn from the isotropic Plummer distribution function via the
    standard Aarseth–Henon–Wielen rejection sampling, so the system starts
    near dynamical equilibrium.  Each body has mass 1 unless ``total_mass``
    is given (paper §VIII-B uses unit masses).
    """
    rng = default_rng(seed)
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    mass_each = 1.0 if total_mass is None else total_mass / n
    m_total = mass_each * n

    # radius from inverse CDF of the Plummer cumulative mass profile
    u = rng.uniform(0.0, 1.0, size=n)
    u = np.clip(u, 1e-10, 1.0 - 1e-10)
    r = scale_radius / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    r = np.minimum(r, max_radius * scale_radius)
    pos = r[:, None] * _random_unit_vectors(rng, n)

    vel = np.zeros_like(pos)
    if virialize:
        # escape speed at radius r for the Plummer potential
        v_esc = np.sqrt(2.0 * G * m_total) * (r**2 + scale_radius**2) ** (-0.25)
        q = _sample_plummer_velocity_fraction(rng, n)
        speed = q * v_esc
        vel = speed[:, None] * _random_unit_vectors(rng, n)

    return ParticleSet(
        pos,
        vel,
        np.full(n, mass_each),
        meta={"kind": "plummer", "scale_radius": scale_radius, "G": G},
    )


def compact_plummer(
    n: int,
    *,
    domain_size: float = 1.0,
    fraction: float = 1.0 / 64.0,
    G: float = 1.0,
    seed=0,
    virialize: bool = True,
    velocity_scale: float = 1.0,
    total_mass: float | None = None,
) -> ParticleSet:
    """Plummer sphere squeezed into ``fraction`` of a cubic domain's volume.

    Reproduces the §IX-A dynamic workload: "the distribution was initially
    contained within 1/64th of the simulation space", leaving room for
    bodies to expand and fall back toward the center of mass over the run.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    sub_edge = domain_size * fraction ** (1.0 / 3.0)
    # choose the Plummer scale so ~99% of mass sits inside the sub-cube
    scale = sub_edge / 2.0 / 10.0
    ps = plummer(
        n,
        scale_radius=scale,
        G=G,
        seed=seed,
        max_radius=(sub_edge / 2.0) / scale,
        virialize=virialize,
        total_mass=total_mass,
    )
    ps.velocities *= velocity_scale
    ps.meta.update({"kind": "compact_plummer", "domain_size": domain_size, "fraction": fraction})
    return ps


def uniform_cube(
    n: int,
    *,
    size: float = 1.0,
    center: tuple[float, float, float] = (0.0, 0.0, 0.0),
    seed=0,
    strength: float = 1.0,
) -> ParticleSet:
    """``n`` bodies uniformly random in a cube of edge ``size``."""
    rng = default_rng(seed)
    pos = rng.uniform(-size / 2.0, size / 2.0, size=(n, 3)) + np.asarray(center)
    return ParticleSet(
        pos,
        np.zeros_like(pos),
        np.full(n, strength),
        meta={"kind": "uniform", "size": size},
    )


def gaussian_blobs(
    n: int,
    *,
    n_blobs: int = 4,
    domain_size: float = 1.0,
    sigma_fraction: float = 0.02,
    seed=0,
) -> ParticleSet:
    """Bodies clustered in a few tight Gaussian blobs — a stress test for
    the adaptive tree (density varying by orders of magnitude)."""
    rng = default_rng(seed)
    centers = rng.uniform(-0.35 * domain_size, 0.35 * domain_size, size=(n_blobs, 3))
    which = rng.integers(0, n_blobs, size=n)
    pos = centers[which] + rng.normal(0.0, sigma_fraction * domain_size, size=(n, 3))
    return ParticleSet(
        pos,
        np.zeros_like(pos),
        np.full(n, 1.0),
        meta={"kind": "gaussian_blobs", "n_blobs": n_blobs},
    )


def exponential_disk(
    n: int,
    *,
    scale_length: float = 0.2,
    thickness: float = 0.02,
    seed=0,
) -> ParticleSet:
    """A thin exponential disk: anisotropic density, deep tree along z."""
    rng = default_rng(seed)
    r = rng.exponential(scale_length, size=n)
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
    z = rng.laplace(0.0, thickness, size=n)
    pos = np.column_stack([r * np.cos(theta), r * np.sin(theta), z])
    return ParticleSet(
        pos,
        np.zeros_like(pos),
        np.full(n, 1.0),
        meta={"kind": "exponential_disk"},
    )


def _random_unit_vectors(rng: np.random.Generator, n: int) -> np.ndarray:
    """Uniform points on the unit sphere."""
    z = rng.uniform(-1.0, 1.0, size=n)
    phi = rng.uniform(0.0, 2.0 * np.pi, size=n)
    s = np.sqrt(np.maximum(0.0, 1.0 - z * z))
    return np.column_stack([s * np.cos(phi), s * np.sin(phi), z])


def _sample_plummer_velocity_fraction(rng: np.random.Generator, n: int) -> np.ndarray:
    """Rejection-sample q = v / v_esc from g(q) ∝ q²(1 − q²)^{7/2}."""
    out = np.empty(n)
    filled = 0
    # g(q) peaks at q = sqrt(2/9) with value < 0.1; bound of 0.1 is safe.
    while filled < n:
        need = n - filled
        q = rng.uniform(0.0, 1.0, size=max(need * 2, 64))
        y = rng.uniform(0.0, 0.1, size=q.shape[0])
        accept = y < q * q * (1.0 - q * q) ** 3.5
        got = q[accept][:need]
        out[filled : filled + got.shape[0]] = got
        filled += got.shape[0]
    return out
