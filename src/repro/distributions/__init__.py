"""Particle distribution generators used by the paper's experiments."""

from repro.distributions.generators import (
    ParticleSet,
    plummer,
    uniform_cube,
    gaussian_blobs,
    exponential_disk,
    compact_plummer,
)

__all__ = [
    "ParticleSet",
    "plummer",
    "uniform_cube",
    "gaussian_blobs",
    "exponential_disk",
    "compact_plummer",
]
