"""Figs. 8–9 + Table II bench — three load-balancing strategies on the
dynamic (expanding-cluster) workload.

Shape claims checked against Table II:
* strategy 3 (full) has the lowest cost per time step (paper: static is
  3.91x, enforce-only 1.51x the full strategy over 2000 steps; our scaled
  run asserts the same ordering with static >= enforce >= full);
* the full strategy's load-balancing overhead stays small (paper: 1.88%
  of compute; we assert < 10%);
* Fig. 9's behaviour: the full strategy's S trail changes over the run
  while the static strategy's S is frozen after the initial search.
"""

import numpy as np

from repro.experiments import fig8_fig9_table2_strategies as strat


def test_bench_strategies(benchmark):
    logs = benchmark.pedantic(
        lambda: strat.run(n=1800, steps=130, velocity_scale=2.6),
        rounds=1,
        iterations=1,
    )
    table = strat.table2(logs)
    print()
    print(table.to_table())

    rows = {r["strategy"]: r for r in table}
    # ordering: full best, static worst
    assert rows["full"]["relative_cost_per_step"] == 1.0
    assert rows["static"]["relative_cost_per_step"] >= rows["enforce"]["relative_cost_per_step"] * 0.98
    assert rows["enforce"]["relative_cost_per_step"] >= 1.0
    assert rows["static"]["relative_cost_per_step"] > 1.1
    # LB overhead small
    assert rows["full"]["lb_pct_of_compute"] < 10.0
    assert rows["static"]["lb_pct_of_compute"] < rows["full"]["lb_pct_of_compute"] * 2

    # Fig. 9: frozen vs adapting S
    static_S = logs["static"].column("S")
    full_S = logs["full"].column("S")
    states = logs["static"].column("state")
    post_search = [s for st, s in zip(states, static_S) if st != "search"]
    assert len(set(post_search)) == 1
    assert len(set(full_S)) > 1

    # Fig. 8: per-step totals of the full strategy end below static's
    tail = slice(-30, None)
    static_tail = np.mean(logs["static"].column("total_time")[tail])
    full_tail = np.mean(logs["full"].column("total_time")[tail])
    print(f"tail mean/step: static={static_tail:.3g}s full={full_tail:.3g}s")
    assert full_tail < static_tail
