"""Repair-vs-rebuild benchmark gate: list surgery must not cost a rebuild.

The tentpole claim: after a localized collapse/pushdown on a 50k-body
tree, refreshing the interaction lists (plus the far-field geometry and
the near-field plan that hang off them) through the journal-driven repair
path beats the full-rebuild baseline by >= 5x.  The two paths run the
*same* op sequence on structurally identical trees, so the comparison is
op-for-op; the baseline is ``ListCache(repair=False)``, which restores
the pre-repair rebuild-on-every-surgery contract exactly.

Also asserted: every refresh on the repair side was a repair (not a
silent fallback rebuild), the far-field geometry rebuilds were *partial*
(rows re-derived, operators served from the class-operator cache that
survives repair), and the near-field planner patched rather than
re-sorted its rows.

Results append to ``BENCH_repair.json`` (uploaded as a CI artifact).
"""

import gc
import json
import time
from pathlib import Path

import _ledger
from repro.distributions.generators import plummer
from repro.fmm.evaluator import CartesianExpansion
from repro.fmm.farfield import far_field_geometry
from repro.fmm.nearfield import build_near_field_plan
from repro.tree import AdaptiveOctree, ListCache

_BENCH_REPAIR = Path(__file__).resolve().parents[1] / "BENCH_repair.json"


def _deepest_splittable(tree):
    best = None
    for nid in tree.leaves():
        node = tree.nodes[nid]
        if node.count > 1 and node.level < tree.max_level:
            if best is None or node.level > tree.nodes[best].level:
                best = nid
    return best


def _deepest_collapsible(tree):
    best = None
    for nid in tree.effective_nodes():
        node = tree.nodes[nid]
        if nid == 0 or node.is_leaf:
            continue
        kids = tree.effective_children(nid)
        if kids and all(tree.nodes[c].is_leaf for c in kids):
            if best is None or node.level > tree.nodes[best].level:
                best = nid
    return best


def test_bench_repair_vs_rebuild(benchmark):
    """Journal repair >= 5x over full rebuild per surgery op at 50k."""
    n = 50_000
    pts = plummer(n, seed=11).positions
    # two structurally identical trees (same points, same S => same node
    # ids), one per cache policy, driven by the same op sequence
    tree_rep = AdaptiveOctree(pts, S=32)
    tree_reb = AdaptiveOctree(pts, S=32)
    exp = CartesianExpansion(4)
    cache_rep = ListCache()
    cache_reb = ListCache(repair=False)

    def refresh(cache, tree):
        lists = cache.get(tree, folded=True)
        far_field_geometry(tree, lists, exp)
        build_near_field_plan(tree, lists)
        return lists

    lists_rep = refresh(cache_rep, tree_rep)  # warm: full build both sides
    refresh(cache_reb, tree_reb)
    op_builds_warm = lists_rep.farfield_geometry_stats["op_builds"]

    n_ops = 8
    t_rep = t_reb = 0.0
    for i in range(n_ops):
        # alternate the balancer's two moves; ids are valid on both trees
        if i % 2 == 0:
            nid = _deepest_splittable(tree_rep)
            tree_rep.pushdown(nid)
            tree_reb.pushdown(nid)
        else:
            nid = _deepest_collapsible(tree_rep)
            tree_rep.collapse(nid)
            tree_reb.collapse(nid)
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            lists_rep = refresh(cache_rep, tree_rep)
            t_rep += time.perf_counter() - t0
            t0 = time.perf_counter()
            refresh(cache_reb, tree_reb)
            t_reb += time.perf_counter() - t0
        finally:
            gc.enable()
    benchmark.pedantic(lambda: refresh(cache_rep, tree_rep), rounds=1, iterations=1)

    # every surgery refresh on the repair side must actually have repaired
    assert (cache_rep.repairs, cache_rep.builds) == (n_ops, 1)
    assert (cache_reb.repairs, cache_reb.builds) == (0, 1 + n_ops)
    stats = lists_rep.farfield_geometry_stats
    assert stats["partial_rebuilds"] == n_ops
    assert stats["op_hits"] > 0, "class-operator cache never hit across repairs"
    assert lists_rep.nearfield_plan_stats["patched"] >= n_ops

    speedup = t_reb / t_rep
    record = {
        "bench": "repair_vs_rebuild_50k_plummer",
        "n": n,
        "S": 32,
        "order": 4,
        "n_ops": n_ops,
        "repairs": cache_rep.repairs,
        "rebuild_ms_total": round(t_reb * 1e3, 3),
        "repair_ms_total": round(t_rep * 1e3, 3),
        "rebuild_ms_per_op": round(t_reb / n_ops * 1e3, 3),
        "repair_ms_per_op": round(t_rep / n_ops * 1e3, 3),
        "speedup": round(speedup, 2),
        "farfield_partial_rebuilds": stats["partial_rebuilds"],
        "farfield_op_hits": stats["op_hits"],
        "farfield_op_builds_after_warm": stats["op_builds"] - op_builds_warm,
        "nearfield_rows_patched": lists_rep.nearfield_plan_stats["patched"],
    }
    history = []
    if _BENCH_REPAIR.exists():
        history = json.loads(_BENCH_REPAIR.read_text())
    history.append(record)
    _BENCH_REPAIR.write_text(json.dumps(history, indent=2) + "\n")
    _ledger.record_to_ledger(record)

    print()
    print(
        f"surgery refresh, 50k plummer S=32: rebuild {t_reb / n_ops * 1e3:.1f} ms/op, "
        f"repair {t_rep / n_ops * 1e3:.1f} ms/op, speedup {speedup:.2f}x "
        f"({cache_rep.repairs} repairs, {stats['op_hits']} operator cache hits)"
    )
    assert speedup >= 5.0, f"repair only {speedup:.2f}x over rebuild"
