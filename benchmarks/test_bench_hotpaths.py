"""Hot-path benchmarks for the vectorized + cached interaction-list engine.

Three claims the PR makes, asserted at benchmark scale:

* the vectorized list builder beats the per-pair scalar oracle by >= 3x on
  a 50k-body nonuniform (Plummer) tree;
* a frozen-shape simulation step performs *zero* list rebuilds — the
  shared :class:`~repro.tree.cache.ListCache` answers every lookup;
* the batched near-field engine's throughput (body pairs / s) is reported
  for regression tracking.

Timing discipline: dict-of-lists deallocation from a previous build can
dominate the *next* build's wall clock, so the timed region runs with the
garbage collector paused (collect first, disable, re-enable after) and we
take the best of several repetitions.
"""

import gc
import json
import time
from pathlib import Path

import numpy as np

import _ledger
from repro.balance.config import BalancerConfig
from repro.distributions.generators import compact_plummer, plummer
from repro.expansions.cartesian import CartesianExpansion
from repro.fmm.multipass import laplace_far_field, laplace_far_field_scalar
from repro.fmm.nearfield import build_near_field_plan, evaluate_near_field
from repro.kernels import GravityKernel, LaplaceKernel
from repro.machine.spec import system_a
from repro.sim.driver import Simulation, SimulationConfig
from repro.tree import AdaptiveOctree, build_interaction_lists
from repro.tree.lists import build_interaction_lists_scalar

_BENCH_FARFIELD = Path(__file__).resolve().parents[1] / "BENCH_farfield.json"


def _best_time(fn, rounds):
    """Best-of-N wall time with the GC held off the timed region."""
    best = float("inf")
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    return best


def test_bench_list_build_speedup(benchmark):
    """Vectorized list construction >= 3x over the scalar path (50k bodies)."""
    pts = plummer(50_000, seed=0).positions
    tree = AdaptiveOctree(pts, S=32)

    vec_t = _best_time(lambda: build_interaction_lists(tree, folded=True), rounds=5)
    scal_t = _best_time(
        lambda: build_interaction_lists_scalar(tree, folded=True), rounds=2
    )
    speedup = scal_t / vec_t
    benchmark.pedantic(
        lambda: build_interaction_lists(tree, folded=True), rounds=3, iterations=1
    )
    print()
    print(
        f"list build, 50k plummer S=32: vectorized {vec_t * 1e3:.1f} ms, "
        f"scalar {scal_t * 1e3:.1f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= 3.0, f"vectorized build only {speedup:.2f}x over scalar"


def test_bench_frozen_step_zero_rebuilds(benchmark):
    """Static-strategy steps after the first never rebuild lists."""
    ps = compact_plummer(3000, seed=1, total_mass=1.0)
    cfg = SimulationConfig(
        dt=1e-4,
        order=3,
        forces="fmm",
        strategy="static",
        balancer=BalancerConfig(s_min=8, s_max=1024),
    )
    sim = Simulation(ps, GravityKernel(G=1.0, softening=1e-3), system_a(), config=cfg)
    sim.step()
    builds_after_first = sim.list_cache.builds
    hits_after_first = sim.list_cache.hits

    benchmark.pedantic(sim.step, rounds=4, iterations=1)

    print()
    print(
        f"5 static steps: builds={sim.list_cache.builds} "
        f"hits={sim.list_cache.hits}"
    )
    # the tree shape is frozen, so the 4 benchmarked steps must be all hits
    assert sim.list_cache.builds == builds_after_first
    assert sim.list_cache.hits > hits_after_first


def test_bench_near_field_throughput(benchmark):
    """Pairs/s of the batched P2P engine on a nonuniform tree."""
    n = 30_000
    pts = plummer(n, seed=2).positions
    tree = AdaptiveOctree(pts, S=48)
    lists = build_interaction_lists(tree, folded=True)
    rng = np.random.default_rng(0)
    q = rng.uniform(0.5, 1.0, n)
    kernel = LaplaceKernel(softening=1e-3)
    plan = build_near_field_plan(tree, lists)

    run = lambda: evaluate_near_field(kernel, tree, lists, q, potential=True)  # noqa: E731
    best = _best_time(run, rounds=3)
    benchmark.pedantic(run, rounds=3, iterations=1)
    print()
    print(
        f"near field, 30k plummer S=48: {plan.total_pairs:,} pairs in "
        f"{best * 1e3:.1f} ms -> {plan.total_pairs / best / 1e6:.1f} Mpairs/s "
        f"({plan.n_groups} source groups)"
    )
    assert plan.total_pairs > 0


def test_bench_far_field_speedup(benchmark):
    """Batched far-field engine >= 3x over the per-node oracle (50k bodies),
    bit-level-equivalent results, zero geometry rebuilds on a re-solve."""
    n = 50_000
    pts = plummer(n, seed=3).positions
    tree = AdaptiveOctree(pts, S=32)
    lists = build_interaction_lists(tree, folded=True)
    rng = np.random.default_rng(3)
    q = rng.uniform(-1, 1, n)
    exp = CartesianExpansion(4)

    run = lambda: laplace_far_field(tree, lists, exp, charges=q)  # noqa: E731
    pot, _ = run()  # warm the geometry/body-plan/basis caches
    builds_after_warmup = lists.farfield_geometry_stats["builds"]

    batched_t = _best_time(run, rounds=5)
    scalar_t = _best_time(
        lambda: laplace_far_field_scalar(tree, lists, exp, charges=q), rounds=2
    )
    ref, _ = laplace_far_field_scalar(tree, lists, exp, charges=q)
    err = float(np.abs(pot - ref).max() / max(1.0, np.abs(ref).max()))
    speedup = scalar_t / batched_t
    benchmark.pedantic(run, rounds=3, iterations=1)

    # frozen shape: every timed re-solve must have hit the geometry cache
    assert lists.farfield_geometry_stats["builds"] == builds_after_warmup == 1

    record = {
        "bench": "far_field_50k_plummer",
        "n": n,
        "S": 32,
        "order": exp.order,
        "backend": exp.backend,
        "batched_ms": round(batched_t * 1e3, 3),
        "scalar_ms": round(scalar_t * 1e3, 3),
        "speedup": round(speedup, 2),
        "max_rel_err": err,
        "geometry_builds": lists.farfield_geometry_stats["builds"],
        "geometry_hits": lists.farfield_geometry_stats["hits"],
    }
    history = []
    if _BENCH_FARFIELD.exists():
        history = json.loads(_BENCH_FARFIELD.read_text())
    history.append(record)
    _BENCH_FARFIELD.write_text(json.dumps(history, indent=2) + "\n")
    _ledger.record_to_ledger(record)

    print()
    print(
        f"far field, 50k plummer S=32 order=4: batched {batched_t * 1e3:.1f} ms, "
        f"scalar {scalar_t * 1e3:.1f} ms, speedup {speedup:.2f}x, "
        f"max rel err {err:.2e}"
    )
    assert err <= 1e-12, f"batched far field drifted from oracle: {err:.2e}"
    assert speedup >= 3.0, f"batched far field only {speedup:.2f}x over scalar"
