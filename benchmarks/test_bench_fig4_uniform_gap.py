"""Fig. 4 bench — the Uniform Gap: distinct cost regimes under a uniform
decomposition.

Shape claims checked:
* at least three depth regimes appear across the S sweep;
* within a regime the compute time is constant (tree shape is identical);
* regime-to-regime jumps are large (> 2x) — the discontinuities that make
  balancing a uniform decomposition hard;
* at no sampled S are CPU and GPU within 30% of each other *and* optimal —
  the gap leaves the balanced point unreachable by a global S alone.
"""

import numpy as np

from repro.experiments import fig4_uniform_gap


def test_bench_fig4(benchmark):
    log = benchmark.pedantic(lambda: fig4_uniform_gap.run(n=20000), rounds=1, iterations=1)
    print()
    print(log.to_table(["S", "depth", "cpu_time", "gpu_time", "compute_time"]))

    regimes = fig4_uniform_gap.regimes(log)
    print("regime means:", {d: f"{t:.4g}" for d, t in regimes.items()})
    assert len(regimes) >= 3

    # plateaus: constant within a depth
    by_depth = {}
    for rec in log:
        by_depth.setdefault(rec["depth"], []).append(rec["compute_time"])
    for times in by_depth.values():
        assert max(times) == min(times)

    # jumps: consecutive regimes differ by > 2x
    means = [regimes[d] for d in sorted(regimes)]
    jumps = [max(a, b) / min(a, b) for a, b in zip(means, means[1:])]
    assert max(jumps) > 2.0
