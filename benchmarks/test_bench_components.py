"""Component microbenchmarks: the hot paths of the library."""

import numpy as np
import pytest

from repro.distributions import plummer
from repro.expansions import CartesianExpansion, SphericalExpansion
from repro.fmm import FMMSolver
from repro.geometry.morton import morton_keys
from repro.kernels import GravityKernel, LaplaceKernel, RegularizedStokesletKernel
from repro.machine import HeterogeneousExecutor, system_a
from repro.runtime import build_fmm_task_graph, simulate_schedule
from repro.tree import build_adaptive, build_interaction_lists

N = 20000


@pytest.fixture(scope="module")
def cloud():
    return plummer(N, seed=0)


@pytest.fixture(scope="module")
def tree(cloud):
    return build_adaptive(cloud.positions, S=64)


@pytest.fixture(scope="module")
def lists(tree):
    return build_interaction_lists(tree, folded=True)


def test_bench_morton_keys(benchmark, cloud):
    low = cloud.positions.min(axis=0)
    size = float((cloud.positions.max(axis=0) - low).max()) * 1.01
    benchmark(morton_keys, cloud.positions, low, size)


def test_bench_tree_build(benchmark, cloud):
    benchmark(build_adaptive, cloud.positions, 64)


def test_bench_interaction_lists(benchmark, tree):
    benchmark(build_interaction_lists, tree, folded=True)


def test_bench_m2l_batch_cartesian(benchmark):
    exp = CartesianExpansion(4)
    rng = np.random.default_rng(0)
    M = rng.uniform(-1, 1, (2000, exp.n_coeffs))
    D = rng.uniform(2, 4, (2000, 3))
    benchmark(exp.m2l_batch, M, D)


def test_bench_m2l_batch_spherical(benchmark):
    exp = SphericalExpansion(4)
    rng = np.random.default_rng(0)
    M = rng.uniform(-1, 1, (2000, exp.n_coeffs)).astype(complex)
    D = rng.uniform(2, 4, (2000, 3))
    benchmark(exp.m2l_batch, M, D)


def test_bench_p2p_block(benchmark):
    rng = np.random.default_rng(1)
    t = rng.uniform(-1, 1, (256, 3))
    s = rng.uniform(-1, 1, (2048, 3))
    q = rng.uniform(0.5, 1.5, 2048)
    k = LaplaceKernel()
    benchmark(k.gradient, t, s, q)


def test_bench_stokeslet_block(benchmark):
    rng = np.random.default_rng(2)
    t = rng.uniform(-1, 1, (256, 3))
    s = rng.uniform(-1, 1, (1024, 3))
    f = rng.uniform(-1, 1, (1024, 3))
    k = RegularizedStokesletKernel(epsilon=1e-2)
    benchmark(k.evaluate, t, s, f)


def test_bench_full_fmm_solve(benchmark, cloud):
    solver = FMMSolver(GravityKernel(G=1.0), order=4)
    tree = build_adaptive(cloud.positions[:5000], S=48)

    def solve():
        return solver.solve(tree, cloud.strengths[:5000], gradient=True)

    benchmark.pedantic(solve, rounds=2, iterations=1)


def test_bench_scheduler_simulation(benchmark, tree, lists):
    graph = build_fmm_task_graph(tree, lists, order=4, kernel=GravityKernel())
    cpu = system_a().cpu
    benchmark(simulate_schedule, graph, cpu, 12)


def test_bench_executor_time_step(benchmark, tree, lists):
    ex = HeterogeneousExecutor(
        system_a().with_resources(n_cores=10, n_gpus=4), order=4, kernel=GravityKernel()
    )
    benchmark(ex.time_step, tree, lists)
