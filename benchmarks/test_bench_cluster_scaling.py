"""Extension bench — distributed-memory strong scaling (paper §II).

Shape claims checked: near-linear speedup at low node counts, efficiency
decaying as the LET exchange's share of the step grows, communication
fraction rising monotonically with node count.
"""

from repro.experiments import cluster_scaling


def test_bench_cluster_scaling(benchmark):
    log = benchmark.pedantic(
        lambda: cluster_scaling.run(n=50000, S=128), rounds=1, iterations=1
    )
    print()
    print(
        log.to_table(
            ["nodes", "step_time", "speedup", "efficiency", "comm_fraction", "comm_mbytes"]
        )
    )
    rows = {r["nodes"]: r for r in log}
    assert rows[1]["speedup"] == 1.0
    assert rows[2]["efficiency"] > 0.85
    assert rows[4]["efficiency"] > 0.7
    # efficiency decays monotonically (to tolerance)
    effs = [rows[p]["efficiency"] for p in (1, 2, 4, 8, 16)]
    assert all(b <= a * 1.02 for a, b in zip(effs, effs[1:]))
    # communication share rises with node count
    comms = [rows[p]["comm_fraction"] for p in (2, 4, 8, 16)]
    assert all(b >= a * 0.9 for a, b in zip(comms, comms[1:]))
    assert rows[16]["comm_mbytes"] > rows[2]["comm_mbytes"]
