"""Shared bench-to-ledger glue: fold gate results into the run ledger.

Each benchmark gate keeps writing its human-browsable ``BENCH_*.json``
snapshot, and *additionally* appends a ``kind="bench"``
:class:`~repro.obs.ledger.RunRecord` to the flight-recorder ledger
(``RUNS.jsonl`` at the repo root, or ``$REPRO_LEDGER``).  That ledger is
the cross-PR perf trajectory the regression tracker reads.

After appending, the tolerance-banded comparator runs against the
bench's own history and prints its verdict.  The verdict is advisory by
default — benchmark machines vary wildly, and a laptop run must not be
failed against a CI baseline — and becomes a hard assertion when
``REPRO_REGRESS_ENFORCE`` is set (the CI ``regression-check`` step runs
the committed trajectory through ``python -m repro regress`` instead,
which is always strict).
"""

import os

from repro.obs.ledger import RunLedger, RunRecord
from repro.obs.regress import check_regression

#: record keys that are identity/config, not measurements
_EXTRA_KEYS = frozenset(
    {
        "bench",
        "backend",
        "bitwise_identical",
        "gate_skipped",
        "cpu_count",
        "cpu_available",
    }
)


def record_to_ledger(record: dict, *, ledger_path: str | None = None):
    """Append one bench record to the ledger; print the regression verdict.

    ``record`` is the same dict the bench writes to its ``BENCH_*.json``
    history.  Numeric fields become ledger ``metrics``; identity fields
    (and the ``gate_skipped`` marker the comparator keys on) ride in
    ``extra``.  Returns the :class:`~repro.obs.regress.RegressionVerdict`.
    """
    metrics = {
        k: v
        for k, v in record.items()
        if k not in _EXTRA_KEYS and isinstance(v, (int, float)) and not isinstance(v, bool)
    }
    extra = {k: v for k, v in record.items() if k in _EXTRA_KEYS and k != "bench"}
    ledger = RunLedger(ledger_path)
    ledger.append(
        RunRecord(bench=record["bench"], kind="bench", metrics=metrics, extra=extra)
    )
    verdict = check_regression(ledger, record["bench"])
    print(f"ledger: appended to {ledger.path}; {verdict}")
    if os.environ.get("REPRO_REGRESS_ENFORCE"):
        assert verdict.ok, str(verdict)
    return verdict
