"""Telemetry overhead budget: a *disabled* tracer must cost < 2% of a
reference step loop.

The instrumented hot paths (driver step, executor phases, balancer,
ListCache) call the tracer unconditionally — the guarantee that makes
that acceptable is that a disabled span is a shared no-op singleton.
This bench measures both sides of that claim:

* the per-call price of a disabled ``tracer.span(...)`` context manager,
  multiplied by a deliberately pessimistic spans-per-step count, against
  the measured wall time of one reference simulation step;
* an end-to-end A/B: the same short step loop run with no telemetry
  argument at all vs. an explicitly disabled bundle (identical code
  paths, so the ratio is ~1; asserted loosely to absorb timer noise).
"""

import gc
import time

from repro.balance.config import BalancerConfig
from repro.distributions.generators import compact_plummer
from repro.kernels import GravityKernel
from repro.machine.spec import system_a
from repro.obs import Telemetry, Tracer
from repro.sim.driver import Simulation, SimulationConfig


#: generous upper bound on tracer touchpoints per simulation step
#: (step + tree-build + far-field + near-field + physics + balancer spans,
#: two counters, a handful of instants, lane bookkeeping)
SPANS_PER_STEP = 64


def _make_sim(telemetry=None, n=600, seed=0):
    ps = compact_plummer(n, seed=seed, total_mass=1.0, velocity_scale=1.5)
    return Simulation(
        ps,
        GravityKernel(G=1.0, softening=1e-3),
        system_a().with_resources(n_cores=6, n_gpus=2),
        config=SimulationConfig(
            dt=1e-4,
            forces="direct",
            strategy="full",
            balancer=BalancerConfig(gap_threshold_frac=0.15, s_min=8, s_max=2048),
        ),
        telemetry=telemetry,
    )


def _best_time(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    return best


def test_bench_disabled_span_under_2pct_of_step(benchmark):
    """SPANS_PER_STEP disabled-span calls cost < 2% of one reference step."""
    tracer = Tracer(enabled=False)

    n_calls = 100_000
    def span_loop():
        for _ in range(n_calls):
            with tracer.span("x"):
                pass
            tracer.counter("S", 1)

    span_total = _best_time(span_loop, rounds=5)
    per_call = span_total / n_calls
    assert len(tracer) == 0  # stayed a no-op throughout

    sim = _make_sim()
    sim.step()  # warm (tree build, caches)
    step_time = _best_time(sim.step, rounds=5)

    overhead_frac = per_call * SPANS_PER_STEP / step_time
    print(
        f"\ndisabled span+counter: {per_call * 1e9:.0f} ns/call; "
        f"reference step: {step_time * 1e3:.2f} ms; "
        f"{SPANS_PER_STEP} calls/step -> {overhead_frac:.4%} of a step"
    )
    assert overhead_frac < 0.02, (
        f"disabled tracer costs {overhead_frac:.2%} of a reference step "
        f"(budget 2%)"
    )
    benchmark.pedantic(span_loop, rounds=3, iterations=1)


def test_bench_disabled_telemetry_end_to_end(benchmark):
    """Step loop with an explicit disabled bundle ~= default (no telemetry)."""
    steps = 6

    def run_default():
        _make_sim(telemetry=None).run(steps)

    def run_disabled():
        _make_sim(telemetry=Telemetry(enabled=False)).run(steps)

    base = _best_time(run_default, rounds=3)
    disabled = _best_time(run_disabled, rounds=3)
    ratio = disabled / base
    print(f"\n{steps}-step loop: default {base:.3f}s, disabled telemetry {disabled:.3f}s, ratio {ratio:.3f}")
    # identical code paths; loose bound absorbs scheduler/timer noise
    assert ratio < 1.10
    benchmark.pedantic(run_disabled, rounds=1, iterations=1)
