"""Fig. 6 bench — CPU speedup vs cores on the System B analog.

Shape claims checked (paper §VIII-C):
* near-linear speedup at low core counts;
* a *small superlinear* bump by 16 cores (multi-socket L3);
* diminishing speedup toward 32 cores (memory saturation).
"""

from repro.experiments import fig6_cpu_scaling


def test_bench_fig6(benchmark):
    log = benchmark.pedantic(
        lambda: fig6_cpu_scaling.run(n=30000, S=64), rounds=1, iterations=1
    )
    print()
    print(log.to_table(["cores", "time", "speedup", "utilization"]))

    sp = {r["cores"]: r["speedup"] for r in log}
    assert sp[1] == 1.0
    assert sp[4] > 3.6  # near-linear early
    assert sp[16] > 15.0  # at-or-above linear at 16 (superlinear region)
    # diminishing beyond 16: efficiency at 32 clearly below efficiency at 16
    assert sp[32] / 32 < sp[16] / 16 * 0.95
    assert sp[32] < 30.0
