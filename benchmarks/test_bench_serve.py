"""Serve benchmark gate: warm solves must beat cold by >= 2x.

The server's economic claim is operator reuse: the first solve of a
geometry-class population pays the dense M2L/M2M/L2L operator builds,
and every subsequent solve over an agreeing root box hits the shared
:class:`~repro.serve.opcache.SharedOperatorCache` instead.  This gate
serves the same spec twice through a live in-process server — cold on a
fresh opcache, then warm — and requires ``cold_ms / warm_ms >= 2.0``.
(Measured headroom is large: order-3 runs land near 10x.)

The timing gate needs real cores to be meaningful under the asyncio
loop + pool threads; below 4 usable CPUs it is skipped.  The *bitwise*
assertion — served results (cold AND warm) equal the direct
:func:`~repro.serve.server.solve_direct` baseline — runs everywhere,
because an oversubscribed box is where cross-thread cache races would
corrupt an operator if they could.

Results append to ``BENCH_serve.json`` and the run ledger, where
``python -m repro regress`` tracks ``warm_ms``.
"""

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

import _ledger
from repro.serve import BackgroundServer, ServeConfig, solve_direct

_BENCH_SERVE = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

SPEC = {"kernel": "laplace", "n": 2000, "seed": 11, "order": 3}


def _available_cpus():
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _timed(fn):
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        out = fn()
        return out, time.perf_counter() - t0
    finally:
        gc.enable()


def test_bench_serve_warm_vs_cold(benchmark):
    """Warm served solve >= 2x faster than cold via operator sharing."""
    avail = _available_cpus()
    gate_skipped = avail < 4

    direct = solve_direct(SPEC)

    with BackgroundServer(
        ServeConfig(pool_size=2, shed_budget_s=3600.0), tcp=False
    ) as bg:
        client = bg.client(in_process=True)
        cold_out, cold_t = _timed(lambda: client.solve(SPEC, tenant="bench"))
        warm_out, warm_t = _timed(lambda: client.solve(SPEC, tenant="bench"))
        # best-of-2 for the warm number; the cold number is by nature
        # unrepeatable within one server lifetime
        warm_out2, warm_t2 = _timed(lambda: client.solve(SPEC, tenant="other"))
        warm_t = min(warm_t, warm_t2)
        benchmark.pedantic(
            lambda: client.solve(SPEC, tenant="bench"), rounds=1, iterations=1
        )
        stats = client.status()["opcache"]

    # bitwise identity runs unconditionally — cold, warm, and cross-tenant
    for out in (cold_out, warm_out, warm_out2):
        assert np.array_equal(out["potential"], direct["potential"]), (
            "served result drifted from the direct baseline bitwise"
        )
        assert np.array_equal(out["gradient"], direct["gradient"])
    assert stats["hits"] > 0, "warm solves never hit the shared cache"

    speedup = cold_t / warm_t
    record = {
        "bench": "serve_warm_vs_cold_2k",
        "n": SPEC["n"],
        "order": SPEC["order"],
        "cpu_count": os.cpu_count(),
        "cpu_available": avail,
        "gate_skipped": gate_skipped,
        "cold_ms": round(cold_t * 1e3, 3),
        "warm_ms": round(warm_t * 1e3, 3),
        "warm_speedup": round(speedup, 2),
        "opcache_entries": stats["entries"],
        "opcache_bytes": stats["bytes"],
        "opcache_hits": stats["hits"],
        "bitwise_identical": True,
    }
    history = []
    if _BENCH_SERVE.exists():
        history = json.loads(_BENCH_SERVE.read_text())
    history.append(record)
    _BENCH_SERVE.write_text(json.dumps(history, indent=2) + "\n")
    _ledger.record_to_ledger(record)

    print()
    print(
        f"serve warm-vs-cold, n={SPEC['n']} order={SPEC['order']}: "
        f"cold {cold_t * 1e3:.0f} ms, warm {warm_t * 1e3:.0f} ms -> "
        f"{speedup:.1f}x ({stats['entries']} cached operators, "
        f"{stats['bytes'] >> 10} KiB)"
    )
    if gate_skipped:
        pytest.skip(
            f"warm-speedup gate needs >= 4 usable CPUs (have {avail}); "
            "bitwise equality verified above"
        )
    assert speedup >= 2.0, (
        f"warm solve only {speedup:.2f}x over cold — operator sharing "
        "is not paying for itself"
    )
