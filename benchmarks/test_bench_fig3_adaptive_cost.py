"""Fig. 3 bench — adaptive decomposition gives *gradual* CPU/GPU cost vs S.

Shape claims checked:
* CPU (far-field) time decreases monotonically (to tolerance) with S;
* GPU (near-field) time increases toward large S;
* the curves cross (a balanced S exists inside the sweep);
* no adjacent-S jump exceeds ~4x (contrast with Fig. 4's regime jumps).
"""

import numpy as np

from repro.experiments import fig3_adaptive_cost


def test_bench_fig3(benchmark):
    log = benchmark.pedantic(
        lambda: fig3_adaptive_cost.run(n=20000), rounds=1, iterations=1
    )
    print()
    print(log.to_table(["S", "cpu_time", "gpu_time", "compute_time", "gpu_efficiency"]))

    cpu = np.array(log.column("cpu_time"))
    gpu = np.array(log.column("gpu_time"))
    # CPU falls with S (allow tiny non-monotonic wiggle)
    assert cpu[0] > 5 * cpu[-1]
    assert np.all(np.diff(cpu) <= cpu[:-1] * 0.15)
    # GPU eventually rises
    assert gpu[-1] > gpu.min() * 1.3
    # crossover exists
    sign = np.sign(cpu - gpu)
    assert sign[0] > 0 and sign[-1] < 0
    # gradual: adjacent compute times never jump by more than ~4x
    comp = np.array(log.column("compute_time"))
    ratios = np.maximum(comp[1:], comp[:-1]) / np.minimum(comp[1:], comp[:-1])
    assert ratios.max() < 4.0
