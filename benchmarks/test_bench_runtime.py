"""Execution-engine benchmark gate: real concurrency must really pay.

The claim under test is the tentpole's acceptance bar: running the full
far-field + near-field pipeline of a 50k-body Plummer step through the
dependency-driven thread-pool engine with 4+ workers beats the serial
path by >= 1.5x — with *bitwise identical* results.  BLAS threading is
pinned to 1 by ``conftest.py``, so any speedup is the engine's task-level
parallelism, not a library pool.

The speedup gate needs real cores: on machines with fewer than 4 CPUs the
timing assertion is skipped (CI runners enforce it); the bitwise-equality
assertion runs everywhere, since thread scheduling on an oversubscribed
box is exactly where determinism bugs would show.

Results append to ``BENCH_runtime.json`` (uploaded as a CI artifact, like
``BENCH_farfield.json``).
"""

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

import _ledger
from repro.distributions.generators import plummer
from repro.fmm.evaluator import FMMSolver
from repro.kernels import LaplaceKernel
from repro.runtime.engine import ExecutionEngine
from repro.tree import AdaptiveOctree, build_interaction_lists

_BENCH_RUNTIME = Path(__file__).resolve().parents[1] / "BENCH_runtime.json"


def _best_time(fn, rounds):
    """Best-of-N wall time with the GC held off the timed region."""
    best = float("inf")
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    return best


def _available_cpus():
    """CPUs this process may actually use — affinity-aware, so a container
    pinned to 2 cores of a 64-core host reports 2, not 64."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def test_bench_engine_step_speedup(benchmark):
    """4-worker engine >= 1.5x over serial on a 50k-body far+near solve."""
    n = 50_000
    avail = _available_cpus()
    gate_skipped = avail < 4
    n_workers = max(4, min(8, avail))
    pts = plummer(n, seed=7).positions
    tree = AdaptiveOctree(pts, S=32)
    lists = build_interaction_lists(tree, folded=True)
    rng = np.random.default_rng(7)
    q = rng.uniform(-1, 1, n)
    kernel = LaplaceKernel(softening=1e-3)

    serial = FMMSolver(kernel, order=4, folded=True)
    ref = serial.solve(tree, q, lists=lists)  # warms every shared cache
    serial_run = lambda: serial.solve(tree, q, lists=lists)  # noqa: E731

    with ExecutionEngine(n_workers=n_workers) as eng:
        par = FMMSolver(kernel, order=4, folded=True, engine=eng)
        res = par.solve(tree, q, lists=lists)
        assert np.array_equal(res.potential, ref.potential), (
            "engine result drifted from serial bitwise"
        )
        par_run = lambda: par.solve(tree, q, lists=lists)  # noqa: E731

        serial_t = _best_time(serial_run, rounds=3)
        par_t = _best_time(par_run, rounds=3)
        benchmark.pedantic(par_run, rounds=2, iterations=1)
        eng_res = par.last_engine_result

    speedup = serial_t / par_t
    record = {
        "bench": "engine_step_50k_plummer",
        "n": n,
        "S": 32,
        "order": 4,
        "n_workers": n_workers,
        "cpu_count": os.cpu_count(),
        "cpu_available": avail,
        # a record with gate_skipped=True carries timings from an
        # oversubscribed box: informational only, never a gate pass
        "gate_skipped": gate_skipped,
        "serial_ms": round(serial_t * 1e3, 3),
        "engine_ms": round(par_t * 1e3, 3),
        "speedup": round(speedup, 2),
        "n_tasks": eng_res.n_tasks,
        "utilization": round(eng_res.utilization, 3),
        "bitwise_identical": True,
    }
    history = []
    if _BENCH_RUNTIME.exists():
        history = json.loads(_BENCH_RUNTIME.read_text())
    history.append(record)
    _BENCH_RUNTIME.write_text(json.dumps(history, indent=2) + "\n")
    _ledger.record_to_ledger(record)

    print()
    print(
        f"engine step, 50k plummer S=32 order=4: serial {serial_t * 1e3:.1f} ms, "
        f"{n_workers} workers {par_t * 1e3:.1f} ms, speedup {speedup:.2f}x, "
        f"{eng_res.n_tasks} tasks, utilization {eng_res.utilization:.0%}"
    )
    if gate_skipped:
        pytest.skip(
            f"speedup gate needs >= 4 usable CPUs (have {avail}); "
            "bitwise equality verified above"
        )
    assert speedup >= 1.5, f"engine only {speedup:.2f}x over serial at {n_workers} workers"
