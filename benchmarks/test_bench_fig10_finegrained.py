"""Fig. 10 bench — FineGrainedOptimize on a quasi-static uniform workload
with the fluid-dynamics (Stokeslet, M2L≈4x) cost profile.

Shape claims checked:
* after the binary-search prologue (paper skips the first 15 steps), the
  run *with* FGO is faster per step on average — FGO bridges the Uniform
  Gap that a global S cannot.  The paper measures a ~3% advantage at 10M
  bodies, where the gap between adjacent whole-level configurations is
  shallow; at our scaled-down N the same gap is a cliff (the whole tree
  is only 2-3 levels deep), so the measured advantage is much larger.
  We assert ratio > 1.02 and print the measured value;
* both runs remain stable (no divergence of per-step time).
"""

import numpy as np

from repro.experiments import fig10_finegrained


def test_bench_fig10(benchmark):
    logs = benchmark.pedantic(
        lambda: fig10_finegrained.run(n=20000, steps=80), rounds=1, iterations=1
    )
    series = fig10_finegrained.ratio_series(logs)
    adv = fig10_finegrained.steady_state_advantage(logs, skip=15)
    print()
    for i in range(0, len(series), 8):
        print(f"  step {i:3d} ratio {series[i]:.4f}")
    print(f"steady-state mean ratio (no-FGO / FGO): {adv:.4f}")

    assert adv > 1.02
    # stability: neither run's tail blows up relative to its own median
    for name, log in logs.items():
        tail = np.array(log.column("total_time")[-20:])
        med = np.median(log.column("total_time")[15:])
        assert tail.max() < 5 * med, name
