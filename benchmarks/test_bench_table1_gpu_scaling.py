"""Table I bench — GPU scaling for a fixed workload.

Shape claims checked: near-linear scaling from the interaction-count
partitioner (paper: "works well"), with only a mild tail-off at 4 GPUs,
and per-GPU interaction loads within a few percent of equal.
"""

from repro.experiments import table1_gpu_scaling


def test_bench_table1(benchmark):
    log = benchmark.pedantic(
        lambda: table1_gpu_scaling.run(n=30000), rounds=1, iterations=1
    )
    print()
    print(log.to_table(["n_gpus", "kernel_time", "speedup", "interaction_imbalance"]))

    sp = {r["n_gpus"]: r["speedup"] for r in log}
    assert sp[1] == 1.0
    assert sp[2] > 1.8
    assert sp[3] > 2.6
    assert 3.4 < sp[4] <= 4.05
    # the greedy walk keeps per-GPU interaction counts near-equal
    for r in log:
        assert r["interaction_imbalance"] < 1.15
