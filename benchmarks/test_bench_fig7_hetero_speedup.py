"""Fig. 7 / §VIII-E bench — heterogeneous node speedup vs S.

Shape claims checked against the paper's discussion:
* large overall speedup for the full node (paper: ~98x at 10C+4G on 1M
  bodies; we assert > 60x at our scale and print the measured value);
* the under-powered-CPU ordering — 10C+2G beats 4C+4G;
* 10C+1G and 4C+2G land close to each other ("achieve similar
  performance");
* resources monotone: more GPUs at fixed cores never hurt, and vice versa.
"""

from repro.experiments import fig7_hetero_speedup


def test_bench_fig7(benchmark):
    log = benchmark.pedantic(
        lambda: fig7_hetero_speedup.run(n=30000), rounds=1, iterations=1
    )
    best = fig7_hetero_speedup.best_speedups(log)
    print()
    for cfg, sp in sorted(best.items(), key=lambda kv: kv[1]):
        print(f"  {cfg:8s} {sp:7.1f}x")

    # headline: the full heterogeneous node is dramatically faster than 1 core
    assert best["10C_4G"] > 60.0
    # §VIII-E ordering claims
    assert best["10C_2G"] > best["4C_4G"]
    ratio = best["10C_1G"] / best["4C_2G"]
    assert 0.6 < ratio < 1.6  # "similar performance"
    # monotonicity in resources
    assert best["10C_4G"] >= best["10C_2G"] >= best["10C_1G"]
    assert best["4C_4G"] >= best["4C_2G"] >= best["4C_1G"]
    assert best["10C_1G"] >= best["4C_1G"]
