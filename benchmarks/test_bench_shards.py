"""Shard-backend benchmark gate: processes must beat threads at scale.

The ISSUE-8 acceptance bar: a large Plummer step (500k bodies by
default, ``REPRO_BENCH_SHARD_N`` overrides) through the multi-process
shard backend at 4 shards beats the 4-worker *thread* engine by >= 1.4x
— with results bitwise identical to the serial path.  Threads run the
same task graph under one GIL; the shard backend's workers each own an
interpreter, exchanging halos through shared memory, so this gate is the
repo's scaling-efficiency claim in one number.

The timing gate needs real cores: below 4 usable CPUs it is skipped (and
the workload shrinks to keep the run tractable), but the bitwise-equality
assertion runs everywhere — an oversubscribed box is exactly where
barrier/merge-ordering bugs would surface.  BLAS threading is pinned to
1 by ``conftest.py`` (the env vars are inherited by the spawned shard
workers), so any speedup is ours, not a library pool's.

Results append to ``BENCH_shards.json`` and to the run ledger, where
``python -m repro regress`` tracks ``shard_ms`` (gate-skipped records
are excluded from the comparison window).
"""

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

import _ledger
from repro.distributions.generators import plummer
from repro.fmm.evaluator import FMMSolver
from repro.kernels import LaplaceKernel
from repro.runtime.engine import ExecutionEngine
from repro.runtime.shards import ProcessEngine
from repro.tree import AdaptiveOctree, build_interaction_lists

_BENCH_SHARDS = Path(__file__).resolve().parents[1] / "BENCH_shards.json"


def _best_time(fn, rounds):
    """Best-of-N wall time with the GC held off the timed region."""
    best = float("inf")
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    return best


def _available_cpus():
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def test_bench_shard_step_speedup(benchmark):
    """4 shard processes >= 1.4x over the 4-thread engine on a big step."""
    avail = _available_cpus()
    gate_skipped = avail < 4
    n = int(os.environ.get("REPRO_BENCH_SHARD_N", "500000"))
    if gate_skipped:
        # no cores -> no timing signal; keep the correctness run tractable
        n = min(n, 100_000)
    n_shards = 4
    S = 64
    pts = plummer(n, seed=7).positions
    tree = AdaptiveOctree(pts, S=S)
    lists = build_interaction_lists(tree, folded=True)
    rng = np.random.default_rng(7)
    q = rng.uniform(-1, 1, n)
    kernel = LaplaceKernel(softening=1e-3)

    serial = FMMSolver(kernel, order=4, folded=True)
    ref = serial.solve(tree, q, lists=lists)  # warms every shared cache
    serial_t = _best_time(lambda: serial.solve(tree, q, lists=lists), rounds=2)

    with ExecutionEngine(n_workers=n_shards) as teng:
        thr = FMMSolver(kernel, order=4, folded=True, engine=teng)
        thr_res = thr.solve(tree, q, lists=lists)
        assert np.array_equal(thr_res.potential, ref.potential)
        thread_t = _best_time(lambda: thr.solve(tree, q, lists=lists), rounds=2)

    with ProcessEngine(n_shards=n_shards) as peng:
        par = FMMSolver(kernel, order=4, folded=True, engine=peng)
        res = par.solve(tree, q, lists=lists)  # installs the shard session
        assert np.array_equal(res.potential, ref.potential), (
            "shard result drifted from serial bitwise"
        )
        assert par.degraded_runs == 0
        par_run = lambda: par.solve(tree, q, lists=lists)  # noqa: E731
        shard_t = _best_time(par_run, rounds=2)
        benchmark.pedantic(par_run, rounds=2, iterations=1)
        shard_res = par.last_shard_result

    speedup_thread = thread_t / shard_t
    speedup_serial = serial_t / shard_t
    record = {
        "bench": "shard_step_500k_plummer",
        "n": n,
        "S": S,
        "order": 4,
        "n_shards": n_shards,
        "cpu_count": os.cpu_count(),
        "cpu_available": avail,
        # gate_skipped records carry timings from an oversubscribed (and
        # down-scaled) box: informational only, excluded by the comparator
        "gate_skipped": gate_skipped,
        "serial_ms": round(serial_t * 1e3, 3),
        "thread_ms": round(thread_t * 1e3, 3),
        "shard_ms": round(shard_t * 1e3, 3),
        "speedup_vs_thread": round(speedup_thread, 2),
        "speedup_vs_serial": round(speedup_serial, 2),
        "scaling_efficiency": round(speedup_serial / n_shards, 3),
        "halo_bytes": int(shard_res.halo_bytes),
        "halo_ms": round(shard_res.halo_seconds * 1e3, 3),
        "shard_imbalance": round(shard_res.imbalance, 3),
        "partition_imbalance": round(shard_res.partition_imbalance, 3),
        "bitwise_identical": True,
    }
    history = []
    if _BENCH_SHARDS.exists():
        history = json.loads(_BENCH_SHARDS.read_text())
    history.append(record)
    _BENCH_SHARDS.write_text(json.dumps(history, indent=2) + "\n")
    _ledger.record_to_ledger(record)

    print()
    print(
        f"shard step, {n} plummer S={S} order=4: serial {serial_t * 1e3:.0f} ms, "
        f"{n_shards} threads {thread_t * 1e3:.0f} ms, {n_shards} shards "
        f"{shard_t * 1e3:.0f} ms -> {speedup_thread:.2f}x vs threads, "
        f"{speedup_serial:.2f}x vs serial "
        f"(halo {shard_res.halo_bytes} B, imbalance {shard_res.imbalance:.2f}x)"
    )
    if gate_skipped:
        pytest.skip(
            f"speedup gate needs >= 4 usable CPUs (have {avail}); "
            "bitwise equality verified above"
        )
    assert speedup_thread >= 1.4, (
        f"shards only {speedup_thread:.2f}x over the thread engine at "
        f"{n_shards} shards"
    )


def test_bench_shard_recovery_overhead(benchmark):
    """Supervised recovery from one worker kill costs <= 1.5x clean.

    The ISSUE-10 acceptance bar: a sharded solve with one seeded SIGKILL
    (supervisor detects the death, respawns the worker, re-executes the
    lost phases) must finish within 1.5x the clean sharded solve at 100k
    bodies — against the pre-supervision behaviour of degrading the
    whole solve to exact serial (~n_shards x).  Bitwise equality and the
    respawn accounting are asserted on every box; the timing gate needs
    >= 2 usable CPUs (on fewer, respawn latency is drowned in
    oversubscription noise).
    """
    from repro.resilience.faults import FaultPlan, FaultSpec

    avail = _available_cpus()
    gate_skipped = avail < 2
    n = int(os.environ.get("REPRO_BENCH_RECOVERY_N", "100000"))
    if gate_skipped:
        n = min(n, 20_000)
    n_shards = 2
    S = 64
    pts = plummer(n, seed=11).positions
    tree = AdaptiveOctree(pts, S=S)
    lists = build_interaction_lists(tree, folded=True)
    q = np.random.default_rng(11).uniform(-1, 1, n)
    kernel = LaplaceKernel(softening=1e-3)

    ref = FMMSolver(kernel, order=4, folded=True).solve(tree, q, lists=lists)

    with ProcessEngine(n_shards=n_shards) as peng:
        par = FMMSolver(kernel, order=4, folded=True, engine=peng)
        res = par.solve(tree, q, lists=lists)  # installs the shard session
        assert np.array_equal(res.potential, ref.potential)
        clean_t = _best_time(lambda: par.solve(tree, q, lists=lists), rounds=2)

        # one SIGKILL per run (the plan travels with every dispatch and
        # fires on attempt 0; the recovery attempt runs clean)
        peng.install_fault_plan(FaultPlan([FaultSpec("kill", "p2m", shard=0)]))
        respawns_before = peng.total_respawns

        def killed_run():
            faulted = par.solve(tree, q, lists=lists)
            assert np.array_equal(faulted.potential, ref.potential), (
                "recovered shard result drifted from serial bitwise"
            )

        recovery_t = _best_time(killed_run, rounds=2)
        benchmark.pedantic(killed_run, rounds=1, iterations=1)
        peng.install_fault_plan(None)
        assert par.degraded_runs == 0, "recovery fell back to serial"
        assert peng.total_respawns >= respawns_before + 2
        assert peng.total_serial_fallbacks == 0

    ratio = recovery_t / clean_t
    record = {
        "bench": "shard_recovery_100k_plummer",
        "n": n,
        "S": S,
        "order": 4,
        "n_shards": n_shards,
        "cpu_count": os.cpu_count(),
        "cpu_available": avail,
        "gate_skipped": gate_skipped,
        "clean_ms": round(clean_t * 1e3, 3),
        "recovery_ms": round(recovery_t * 1e3, 3),
        "recovery_ratio": round(ratio, 3),
        "respawns": int(peng.total_respawns),
        "bitwise_identical": True,
    }
    history = []
    if _BENCH_SHARDS.exists():
        history = json.loads(_BENCH_SHARDS.read_text())
    history.append(record)
    _BENCH_SHARDS.write_text(json.dumps(history, indent=2) + "\n")
    _ledger.record_to_ledger(record)

    print()
    print(
        f"shard recovery, {n} plummer S={S} order=4 at {n_shards} shards: "
        f"clean {clean_t * 1e3:.0f} ms, one-kill recovery "
        f"{recovery_t * 1e3:.0f} ms -> {ratio:.2f}x "
        f"(vs ~{n_shards}x for the old degrade-to-serial path)"
    )
    if gate_skipped:
        pytest.skip(
            f"recovery gate needs >= 2 usable CPUs (have {avail}); "
            "bitwise equality and respawn accounting verified above"
        )
    assert ratio <= 1.5, (
        f"recovery cost {ratio:.2f}x the clean sharded solve (budget 1.5x)"
    )
