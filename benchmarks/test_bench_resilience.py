"""Resilience-layer overhead benchmarks (DESIGN.md §11).

Two claims:

* the numeric guardrail is effectively free when disabled — the per-step
  gate is one predicate on a frozen config — and cheap when enabled: the
  finiteness probe is a single ``np.sum`` reduction over the acceleration
  array, < 2% of a 50k-body FMM solve;
* checkpoint writes are bounded: the full state of a 50k-body simulation
  (arrays + tree node table + manifest) serializes in well under one
  solve's wall time, so a modest cadence adds negligible amortized cost.
"""

import gc
import time

import numpy as np

from repro.distributions.generators import plummer
from repro.kernels import LaplaceKernel
from repro.kernels.laplace import GravityKernel
from repro.machine.spec import system_a
from repro.fmm.evaluator import FMMSolver
from repro.resilience import GuardrailConfig, check_finite
from repro.sim.driver import Simulation, SimulationConfig
from repro.tree import AdaptiveOctree, build_interaction_lists


def _best_time(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    return best


def test_bench_guardrail_overhead(benchmark):
    """The enabled-guardrail probe costs < 2% of a 50k-body solve step."""
    n = 50_000
    pts = plummer(n, seed=0).positions
    q = np.random.default_rng(0).uniform(-1, 1, n)
    tree = AdaptiveOctree(pts, S=64)
    lists = build_interaction_lists(tree, folded=True)
    solver = FMMSolver(LaplaceKernel(softening=1e-3), order=3)

    def solve_only():
        solver.solve(tree, q, gradient=True, potential=False, lists=lists)

    acc = solver.solve(tree, q, gradient=True, potential=False, lists=lists).gradient

    solve_t = _best_time(solve_only, rounds=3)
    probe_t = _best_time(lambda: check_finite(acc), rounds=20)

    # the disabled path is just the cadence predicate
    disabled = GuardrailConfig()
    gate_t = _best_time(lambda: disabled.due(7), rounds=20)

    overhead = probe_t / solve_t
    print(
        f"\n50k-body solve {solve_t * 1e3:.1f} ms | finiteness probe "
        f"{probe_t * 1e6:.1f} us ({overhead:.4%}) | disabled gate "
        f"{gate_t * 1e9:.0f} ns"
    )
    assert overhead < 0.02
    assert gate_t < solve_t  # trivially true; keeps the number reported

    benchmark(lambda: check_finite(acc))


def test_bench_checkpoint_write(benchmark, tmp_path):
    """Writing a 50k-body checkpoint stays well under one solve step."""
    n = 50_000
    sim = Simulation(
        plummer(n, seed=1),
        GravityKernel(softening=1e-3),
        system_a(),
        config=SimulationConfig(forces="fmm", order=2),
    )
    with sim:
        sim.step()
        stem = str(tmp_path / "ck")
        write_t = _best_time(lambda: sim.save_checkpoint(stem), rounds=3)
        q = sim.particles.strengths
        lists = sim.list_cache.get(sim.tree, folded=sim.config.folded)
        solve_t = _best_time(
            lambda: sim.solver.solve(
                sim.tree, q, gradient=True, potential=False, lists=lists
            ),
            rounds=3,
        )
        print(
            f"\ncheckpoint write {write_t * 1e3:.1f} ms "
            f"(one numeric solve {solve_t * 1e3:.1f} ms)"
        )
        assert write_t < 5.0 * solve_t  # cadence K amortizes this to noise
        benchmark(lambda: sim.save_checkpoint(stem))
