"""Benchmark suite configuration.

Every paper table/figure has one module here that regenerates it at a
reduced-but-faithful scale and asserts the *shape* claims (who wins, by
roughly what factor, where crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only -s

Pass ``-s`` to see the regenerated rows/series.
"""

import sys
from pathlib import Path

# allow running the benchmarks without installing the package
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
