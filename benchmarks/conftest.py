"""Benchmark suite configuration.

Every paper table/figure has one module here that regenerates it at a
reduced-but-faithful scale and asserts the *shape* claims (who wins, by
roughly what factor, where crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only -s

Pass ``-s`` to see the regenerated rows/series.

BLAS threading is pinned to one thread *before NumPy loads* (the env vars
below are read at library init): the execution-engine benches attribute
speedup to *our* task-level parallelism, and an OpenBLAS/MKL pool running
underneath would both confound that attribution and oversubscribe the
cores the engine's workers sit on.
"""

import os
import sys
from pathlib import Path

# must precede any (transitive) numpy import in this process
for _var in (
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "OMP_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
):
    os.environ[_var] = "1"

import pytest

# allow running the benchmarks without installing the package
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


@pytest.fixture(autouse=True)
def pinned_blas_threads():
    """Assert the single-thread BLAS pin held for every benchmark."""
    for var in ("OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS", "OMP_NUM_THREADS"):
        assert os.environ.get(var) == "1", f"{var} lost its single-thread pin"
    yield
