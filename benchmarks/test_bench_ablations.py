"""Ablation benches for the design choices called out in DESIGN.md §5."""

import numpy as np

from repro.experiments import ablations


def test_bench_ablation_adaptive_vs_uniform(benchmark):
    """On a Plummer distribution the adaptive tree's best compute time
    beats the uniform tree's (the motivation of §I-B)."""
    log = benchmark.pedantic(
        lambda: ablations.adaptive_vs_uniform(n=20000), rounds=1, iterations=1
    )
    print()
    print(log.to_table())
    rows = {r["decomposition"]: r for r in log}
    assert rows["adaptive"]["best_compute_time"] < rows["uniform"]["best_compute_time"]


def test_bench_ablation_wx_lists(benchmark):
    """Folding W/X into P2P (the paper's scheme) trades extra direct
    interactions for zero M2P/P2L work; both produce the same field."""
    log = benchmark.pedantic(
        lambda: ablations.wx_lists_vs_folded(n=4000, S=40), rounds=1, iterations=1
    )
    print()
    print(log.to_table())
    rows = {r["scheme"]: r for r in log}
    assert rows["folded"]["p2p_interactions"] > rows["cgr_wx"]["p2p_interactions"]
    assert rows["cgr_wx"]["m2p_terms"] > 0 and rows["cgr_wx"]["p2l_terms"] > 0
    assert rows["cross_agreement"]["potential_rel_err"] < 5e-3


def test_bench_ablation_expansions(benchmark):
    """Cartesian Taylor vs spherical harmonics: comparable accuracy at the
    same order; coefficient counts differ (35 vs 25 at p=4)."""
    log = benchmark.pedantic(
        lambda: ablations.expansion_backends(n=2000, order=5, S=50),
        rounds=1,
        iterations=1,
    )
    print()
    print(log.to_table())
    errs = {r["backend"]: r["potential_rel_err"] for r in log}
    assert errs["cartesian"] < 1e-3
    assert errs["spherical"] < 1e-3


def test_bench_ablation_gpu_partition(benchmark):
    """The paper's interaction-count walk keeps per-GPU loads near-equal."""
    log = benchmark.pedantic(
        lambda: ablations.gpu_partition_strategies(n=30000, S=128),
        rounds=1,
        iterations=1,
    )
    print()
    print(log.to_table())
    rows = {r["strategy"]: r for r in log}
    assert rows["interaction_count"]["imbalance"] < 1.2


def test_bench_ablation_barnes_hut(benchmark):
    """§I positioning: FMM precision is order-controlled everywhere; the
    monopole treecode's theta knob has failure regimes (loose theta on
    clustered mass, any theta on net-neutral charge)."""
    log = benchmark.pedantic(
        lambda: ablations.barnes_hut_vs_fmm(n=3000), rounds=1, iterations=1
    )
    print()
    print(log.to_table())
    rows = {r["method"]: r["potential_rel_err"] for r in log}
    # both precision knobs work in their stable regimes...
    assert rows["barnes_hut(theta=0.4)"] < rows["barnes_hut(theta=0.6)"]
    assert rows["fmm(order=6)"] < rows["fmm(order=4)"] < rows["fmm(order=2)"]
    # ...but every FMM order is controlled while the monopole treecode has
    # failure regimes: net-neutral charges defeat it at any practical theta
    assert all(rows[f"fmm(order={p})"] < 0.01 for p in (2, 4, 6))
    assert rows["barnes_hut(theta=0.4, neutral charges)"] > 0.05
    assert rows["fmm(order=4, neutral charges)"] < 0.01
    assert (
        rows["fmm(order=4, neutral charges)"]
        < rows["barnes_hut(theta=0.4, neutral charges)"] / 50
    )


def test_bench_ablation_endpoint_offload(benchmark):
    """§VIII-E extension: offloading P2M/L2P to the GPUs lifts the
    CPU-starved configuration but not the balanced one."""
    log = benchmark.pedantic(
        lambda: ablations.endpoint_offload(n=20000), rounds=1, iterations=1
    )
    print()
    print(log.to_table())
    rows = {(r["config"], r["offload_endpoints"]): r["best_compute_time"] for r in log}
    # CPU-starved: offload is a real win
    assert rows[("4C_4G", True)] < rows[("4C_4G", False)] * 0.95
    # balanced: offload is roughly neutral
    ratio = rows[("10C_2G", True)] / rows[("10C_2G", False)]
    assert 0.9 < ratio < 1.1


def test_bench_ablation_coefficients(benchmark):
    """§IV-D: coefficients observed at one S predict other-S times well
    enough to steer the balancer (CPU within ~50% across a 32..1024 sweep,
    and ranking preserved)."""
    log = benchmark.pedantic(
        lambda: ablations.coefficient_prediction_quality(n=20000),
        rounds=1,
        iterations=1,
    )
    print()
    print(log.to_table(["S", "predicted_cpu", "actual_cpu", "cpu_rel_err", "gpu_rel_err"]))
    assert np.median(log.column("cpu_rel_err")) < 0.5
    # the prediction must rank configurations correctly (what FGO needs)
    pred = np.array(log.column("predicted_cpu"))
    act = np.array(log.column("actual_cpu"))
    assert np.all(np.argsort(pred) == np.argsort(act))
